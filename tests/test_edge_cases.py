"""Edge cases and adversarial inputs across the library.

These exercise the corners the main suites don't: pathological value
distributions, degenerate partition plans, format-corruption handling, and
cross-codec agreement on hostile data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress
from repro.baselines import DeltaCodec, FORCodec, LecoCodec, RLECodec
from repro.core.encoding import CompressedArray, LecoEncoder
from repro.core.regressors import get_regressor
from repro.core.strings import StringCompressor


def _adversarial_arrays():
    """Hand-picked hostile integer shapes."""
    big = np.iinfo(np.int64).max // 2
    return [
        np.array([0], dtype=np.int64),
        np.array([big, -big, big, -big], dtype=np.int64),      # max swings
        np.array([0] * 1000 + [big], dtype=np.int64),          # one outlier
        np.repeat([1, -1], 500).astype(np.int64),              # oscillation
        np.arange(1000, dtype=np.int64)[::-1].copy(),          # descending
        np.zeros(1, dtype=np.int64),
        (np.arange(100, dtype=np.int64) * 0 + 7),              # constant
        np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144],
                 dtype=np.int64),                               # convex
    ]


class TestAdversarialShapes:
    @pytest.mark.parametrize("idx", range(8))
    def test_all_codecs_stay_lossless(self, idx):
        values = _adversarial_arrays()[idx]
        for codec in (FORCodec(frame_size=16),
                      LecoCodec("linear", partitioner=16),
                      LecoCodec("linear", partitioner="variable"),
                      DeltaCodec("fix", partition_size=16),
                      RLECodec()):
            enc = codec.encode(values)
            assert np.array_equal(enc.decode_all(), values), codec.name

    @pytest.mark.parametrize("idx", range(8))
    def test_serial_decode_agrees(self, idx):
        values = _adversarial_arrays()[idx]
        arr = LecoEncoder("linear", partitioner=16).encode(values)
        assert np.array_equal(arr.decode_all_serial(), arr.decode_all())

    def test_full_int64_range_swings(self):
        """Residual-guard fallback: a linear fit of alternating extremes
        would mispredict by ~2^63; the encoder must fall back safely."""
        big = np.iinfo(np.int64).max // 2
        values = np.tile([big, -big], 50).astype(np.int64)
        arr = LecoEncoder("linear", partitioner=100).encode(values)
        assert np.array_equal(arr.decode_all(), values)

    def test_exponential_regressor_on_hostile_data_stays_lossless(self):
        """Exp models can overflow float range; the guard must catch it."""
        rng = np.random.default_rng(0)
        values = rng.integers(-(1 << 60), 1 << 60, 500).astype(np.int64)
        arr = LecoEncoder("exponential", partitioner=100).encode(values)
        assert np.array_equal(arr.decode_all(), values)


class TestFormatCorruption:
    def _arr(self):
        return LecoEncoder("linear", partitioner=32).encode(
            np.arange(200, dtype=np.int64))

    def test_truncated_buffer_raises(self):
        blob = self._arr().to_bytes()
        with pytest.raises((ValueError, IndexError)):
            CompressedArray.from_bytes(blob[: len(blob) // 2]).decode_all()

    def test_empty_buffer_raises(self):
        with pytest.raises((ValueError, IndexError)):
            CompressedArray.from_bytes(b"")

    def test_foreign_magic_raises(self):
        with pytest.raises(ValueError):
            CompressedArray.from_bytes(b"PAR1" + bytes(64))


class TestApiContracts:
    @given(st.lists(st.integers(-(1 << 55), 1 << 55), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_compress_decompress_identity(self, raw):
        values = np.array(raw, dtype=np.int64)
        assert np.array_equal(decompress(compress(values)), values)

    def test_compress_accepts_smaller_dtypes(self):
        for dtype in (np.int8, np.int16, np.int32, np.uint8, np.uint32):
            values = np.arange(100).astype(dtype)
            arr = compress(values)
            assert np.array_equal(decompress(arr),
                                  values.astype(np.int64))

    def test_every_registered_regressor_is_loadable(self):
        from repro.core.regressors import available_regressors

        for name in available_regressors():
            reg = get_regressor(name)
            n = max(reg.min_partition_size, 20)
            values = (np.arange(n) * 5 + 3).astype(np.int64)
            model = reg.fit(values)
            clone = reg.load(model.params)
            positions = np.arange(n)
            assert np.array_equal(model.predict_int(positions),
                                  clone.predict_int(positions)), name


class TestStringEdgeCases:
    def test_single_char_universe(self):
        strings = [b"a" * k for k in range(20)]
        comp = StringCompressor(partition_size=8).encode(strings)
        assert comp.decode_all() == strings

    def test_high_bytes(self):
        strings = [bytes([255, 254, k]) for k in range(50)]
        comp = StringCompressor(partition_size=16).encode(strings)
        assert comp.decode_all() == strings

    def test_partition_of_identical_strings(self):
        strings = [b"same-key"] * 100
        comp = StringCompressor(partition_size=32).encode(strings)
        assert comp.decode_all() == strings
        # identical strings collapse into prefix-only partitions
        assert all(p.deltas.width == 0 for p in comp.partitions)

    def test_mixed_length_order_preserved_through_mapping(self):
        """The §3.4 string-to-integer mapping is order-preserving: sorted
        input must yield non-decreasing minimum-padded integers.  (The
        *stored* values are clamped predictions inside each string's padding
        range, so they need not be monotone — only decodable.)"""
        strings = sorted(
            bytes(np.random.default_rng(k).integers(97, 123, k % 7 + 1)
                  .astype(np.uint8)) for k in range(64))
        comp = StringCompressor(partition_size=64).encode(strings)
        part = comp.partitions[0]
        trimmed = [s[len(part.prefix):] for s in strings]
        mapped_min = [part._map(s, pad_rank=0) for s in trimmed]
        assert mapped_min == sorted(mapped_min)


class TestEngineEdgeCases:
    def test_single_row_table_query(self):
        from repro.engine import ParquetLikeFile, run_filter_groupby_query

        table = {"ts": np.array([5], dtype=np.int64),
                 "id": np.array([1], dtype=np.int64),
                 "val": np.array([10], dtype=np.int64)}
        file = ParquetLikeFile.write(table, "leco")
        result = run_filter_groupby_query(file, 0, 10)
        assert result.answer == {1: 10.0}

    def test_filter_range_spanning_everything(self):
        from repro.engine import EncodedColumn

        values = np.arange(1000, dtype=np.int64)
        col = EncodedColumn(values, "leco", partition_size=100)
        lo, hi = np.iinfo(np.int64).min // 4, np.iinfo(np.int64).max // 4
        assert col.filter_range(lo, hi).all()

    def test_bitmap_all_ones(self):
        from repro.engine import ParquetLikeFile, run_bitmap_aggregation

        values = np.arange(2000, dtype=np.int64)
        file = ParquetLikeFile.write({"v": values}, "leco",
                                     row_group_size=500)
        bitmap = np.ones(2000, dtype=bool)
        result = run_bitmap_aggregation(file, "v", bitmap)
        assert result.answer == int(values.sum())


class TestKVStoreEdgeCases:
    def test_single_record_store(self):
        from repro.kvstore import MiniLSM

        db = MiniLSM([(b"only-key", b"v")], "leco")
        assert db.seek(b"only-key") == (b"only-key", b"v")
        assert db.seek(b"zzz") is None
        assert db.seek(b"a") == (b"only-key", b"v")

    def test_duplicate_value_payloads(self):
        from repro.kvstore import MiniLSM

        records = [(f"k{i:04d}".encode(), b"\x00" * 10) for i in range(500)]
        db = MiniLSM(records, "restart", restart_interval=16,
                     table_records=200)
        for i in (0, 250, 499):
            assert db.seek(records[i][0]) == records[i]
