"""Tests for the partitioning schemes (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioners import (
    AutoFixedPartitioner,
    FixedLengthPartitioner,
    LaVectorPartitioner,
    OptimalPartitioner,
    PLAPartitioner,
    SimPiecePartitioner,
    SplitMergePartitioner,
    advise_partitioning,
    fixed_bounds,
    global_hardness,
    local_hardness,
    plan_cost_bits,
    pla_segments,
    search_partition_size,
    select_seeds,
    simpiece_segments,
    validate_bounds,
)
from repro.core.regressors import ConstantRegressor, LinearRegressor

int_arrays = st.lists(st.integers(-(1 << 30), 1 << 30), min_size=1,
                      max_size=300).map(
                          lambda v: np.array(v, dtype=np.int64))

ALL_PARTITIONERS = [
    FixedLengthPartitioner(16),
    AutoFixedPartitioner(max_size=64),
    SplitMergePartitioner(tau=0.1),
    OptimalPartitioner(window=64),
    PLAPartitioner(epsilon=50),
    SimPiecePartitioner(epsilon=50),
    LaVectorPartitioner(),
]


class TestBoundsValidation:
    def test_valid_cover_accepted(self):
        validate_bounds([(0, 3), (3, 7)], 7)

    @pytest.mark.parametrize("bounds,n", [
        ([(0, 3), (4, 7)], 7),     # gap
        ([(0, 3), (2, 7)], 7),     # overlap
        ([(1, 7)], 7),             # does not start at 0
        ([(0, 5)], 7),             # does not end at n
        ([(0, 0)], 0),             # empty partition
        ([], 5),                   # empty plan for non-empty data
    ])
    def test_bad_covers_rejected(self, bounds, n):
        with pytest.raises(ValueError):
            validate_bounds(bounds, n)

    def test_empty_sequence(self):
        validate_bounds([], 0)


class TestEveryPartitionerProducesValidCover:
    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS,
                             ids=lambda p: p.name)
    @given(values=int_arrays)
    @settings(max_examples=15, deadline=None)
    def test_cover_property(self, partitioner, values):
        bounds = partitioner.partition(values, LinearRegressor())
        validate_bounds(bounds, len(values))


class TestFixedLength:
    def test_fixed_bounds_shapes(self):
        assert fixed_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert fixed_bounds(8, 4) == [(0, 4), (4, 8)]
        assert fixed_bounds(0, 4) == []

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FixedLengthPartitioner(0)
        with pytest.raises(ValueError):
            fixed_bounds(10, -1)

    def test_search_prefers_large_blocks_on_linear_data(self):
        values = (3 * np.arange(20_000)).astype(np.int64)
        size = search_partition_size(values, LinearRegressor(),
                                     max_size=4096)
        assert size >= 1024

    def test_search_lands_near_the_u_shape_minimum(self):
        """Fig. 5: the ratio-vs-size curve is U-shaped; the sampled search
        should find a size no worse than both extremes."""
        rng = np.random.default_rng(0)
        # plateaus of 256 with big level jumps: small blocks drown in
        # headers, huge blocks absorb many jumps into one width
        levels = rng.integers(0, 1 << 40, 64)
        values = np.repeat(levels, 256).astype(np.int64)
        values += rng.integers(0, 4, len(values))
        reg = LinearRegressor()
        from repro.core.partitioners.fixed import _cost_at_size, _sample_ranges

        samples = _sample_ranges(len(values), 4096, 0.05, 7)
        chosen = search_partition_size(values, reg, max_size=4096,
                                       sample_fraction=0.05)
        chosen_cost = _cost_at_size(values, samples, reg, chosen)
        assert chosen_cost <= _cost_at_size(values, samples, reg, 3)
        assert chosen_cost <= _cost_at_size(values, samples, reg, 4096)


class TestSplitMerge:
    def test_tau_validation(self):
        with pytest.raises(ValueError):
            SplitMergePartitioner(tau=1.5)

    def test_detects_slope_change(self):
        # two clean linear pieces; the boundary should be within a few
        # positions of the true change point
        a = 100 * np.arange(500)
        b = a[-1] + 3 * np.arange(1, 501)
        values = np.concatenate([a, b]).astype(np.int64)
        bounds = SplitMergePartitioner(tau=0.05).partition(
            values, LinearRegressor())
        edges = {edge for _, edge in bounds}
        assert any(abs(edge - 500) <= 8 for edge in edges)

    def test_single_partition_on_clean_line(self):
        values = (7 * np.arange(2000) + 3).astype(np.int64)
        bounds = SplitMergePartitioner(tau=0.05).partition(
            values, LinearRegressor())
        assert len(bounds) <= 3

    def test_close_to_optimal_cost(self):
        """The paper claims the greedy is within ~3% of the DP optimum; we
        allow 10% on our cost model across several shapes."""
        rng = np.random.default_rng(1)
        reg = LinearRegressor()
        for shape in range(3):
            if shape == 0:
                values = np.cumsum(rng.integers(0, 60, 3000)).astype(np.int64)
            elif shape == 1:
                values = np.concatenate([
                    s * np.arange(300) + int(rng.integers(0, 10 ** 6))
                    for s in rng.integers(1, 400, 10)]).astype(np.int64)
            else:
                values = rng.integers(0, 10 ** 6, 2000).astype(np.int64)
            greedy = SplitMergePartitioner(tau=0.1).partition(values, reg)
            optimal = OptimalPartitioner(window=len(values)).partition(
                values, reg)
            greedy_cost = plan_cost_bits(values, greedy, reg, exact=True)
            optimal_cost = plan_cost_bits(values, optimal, reg, exact=True)
            assert greedy_cost <= optimal_cost * 1.10, shape

    def test_empty_input(self):
        bounds = SplitMergePartitioner().partition(
            np.array([], dtype=np.int64), LinearRegressor())
        assert bounds == []

    def test_works_with_constant_regressor(self):
        values = np.repeat(np.arange(10), 50).astype(np.int64)
        bounds = SplitMergePartitioner(tau=0.1).partition(
            values, ConstantRegressor())
        validate_bounds(bounds, len(values))


class TestSeedSelection:
    def test_seeds_prefer_smooth_regions(self):
        rng = np.random.default_rng(2)
        rough = rng.integers(0, 10 ** 6, 100)
        smooth = 5 * np.arange(100) + 10 ** 6
        values = np.concatenate([rough, smooth]).astype(np.int64)
        seeds = select_seeds(values, order=2)
        # the best-precedence seed should live in the smooth half
        assert seeds[0] >= 95

    def test_short_input(self):
        assert list(select_seeds(np.array([1, 2], dtype=np.int64), 2)) == [0]


class TestPLA:
    @given(int_arrays, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_error_bound_property(self, values, epsilon):
        """Every PLA segment admits a line through its anchor within eps."""
        segments = pla_segments(values, float(epsilon))
        validate_bounds(segments, len(values))
        for start, end in segments:
            seg = values[start:end].astype(np.float64)
            if len(seg) <= 2:
                continue
            x = np.arange(len(seg))
            # feasibility: some slope through the anchor fits all points
            lo = ((seg[1:] - epsilon - seg[0]) / x[1:]).max()
            hi = ((seg[1:] + epsilon - seg[0]) / x[1:]).min()
            assert lo <= hi + 1e-9

    def test_zero_epsilon_splits_at_any_nonlinearity(self):
        values = np.array([0, 10, 20, 35], dtype=np.int64)
        segments = pla_segments(values, 0.0)
        assert len(segments) == 2

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            pla_segments(np.array([1, 2]), -1.0)

    def test_linear_data_single_segment(self):
        values = (42 + 9 * np.arange(5000)).astype(np.int64)
        assert len(pla_segments(values, 1.0)) == 1


class TestSimPiece:
    def test_quantised_segments_cover(self):
        rng = np.random.default_rng(3)
        values = np.cumsum(rng.integers(0, 50, 2000)).astype(np.int64)
        segments = simpiece_segments(values, 32.0)
        validate_bounds(segments, len(values))

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            SimPiecePartitioner(0.0)

    def test_more_segments_than_plain_pla(self):
        """Quantising the anchor can only shrink the feasible cone."""
        rng = np.random.default_rng(4)
        values = np.cumsum(rng.integers(0, 100, 3000)).astype(np.int64)
        plain = pla_segments(values, 64.0)
        quantised = simpiece_segments(values, 64.0)
        assert len(quantised) >= len(plain)


class TestLaVector:
    def test_prefers_wide_segments_on_linear_data(self):
        values = (11 * np.arange(3000)).astype(np.int64)
        bounds = LaVectorPartitioner().partition(values, LinearRegressor())
        assert len(bounds) <= 4

    def test_handles_single_value(self):
        bounds = LaVectorPartitioner().partition(
            np.array([5], dtype=np.int64), LinearRegressor())
        assert bounds == [(0, 1)]


class TestOptimalDP:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            OptimalPartitioner(window=1)

    def test_beats_or_matches_fixed_plans(self):
        rng = np.random.default_rng(5)
        values = np.cumsum(rng.integers(0, 30, 1500)).astype(np.int64)
        reg = LinearRegressor()
        optimal = OptimalPartitioner(window=1500).partition(values, reg)
        opt_cost = plan_cost_bits(values, optimal, reg, exact=False)
        for size in (16, 64, 256):
            fixed = FixedLengthPartitioner(size).partition(values, reg)
            assert opt_cost <= plan_cost_bits(values, fixed, reg,
                                              exact=False)


class TestHardnessAdvisor:
    def test_linear_data_is_easy_everywhere(self):
        values = (13 * np.arange(20_000)).astype(np.int64)
        assert local_hardness(values) < 0.1
        assert global_hardness(values) < 0.1

    def test_noisy_data_is_locally_hard(self):
        rng = np.random.default_rng(6)
        values = np.sort(rng.integers(0, 1 << 40, 20_000)).astype(np.int64)
        assert local_hardness(values) > 0.4

    def test_piecewise_data_is_globally_hard(self):
        pieces = [s * np.arange(2000) for s in (1, 500, 3, 900, 7, 1200)]
        values = np.concatenate(
            [p + i * 10 ** 7 for i, p in enumerate(pieces)]).astype(np.int64)
        assert global_hardness(values) > 0.4

    def test_advice_recommends_variable_for_local_easy_global_hard(self):
        pieces = [s * np.arange(2000) for s in (1, 500, 3, 900)]
        values = np.concatenate(
            [p + i * 10 ** 7 for i, p in enumerate(pieces)]).astype(np.int64)
        report = advise_partitioning(values)
        assert report.recommend_variable
        assert "globally-hard" in report.quadrant

    def test_empty_inputs(self):
        empty = np.array([], dtype=np.int64)
        assert local_hardness(empty) == 0.0
        assert global_hardness(empty) == 0.0
