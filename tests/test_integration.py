"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.baselines import (
    DeltaCodec,
    EliasFanoCodec,
    FORCodec,
    LecoCodec,
    standard_codecs,
)
from repro.core.partitioners import advise_partitioning
from repro.datasets import FIG10_DATASETS, load


@pytest.mark.parametrize("name", FIG10_DATASETS)
def test_every_fig10_dataset_roundtrips_through_every_codec(name):
    """The microbenchmark's correctness backbone: all codecs, all datasets."""
    ds = load(name, n=4000)
    values = ds.values
    for codec in standard_codecs(include_rans=False):
        enc = codec.encode(values)
        assert np.array_equal(enc.decode_all(), values), codec.name
    if ds.sorted:
        enc = EliasFanoCodec().encode(values)
        assert np.array_equal(enc.decode_all(), values)


@pytest.mark.parametrize("name", ["linear", "ml", "movieid"])
def test_leco_fix_beats_for_on_locally_easy_data(name):
    """§4.3.1: LeCo's ratio is strictly better than FOR's on these sets."""
    values = load(name, n=20_000).values
    for_size = FORCodec().encode(values).compressed_size_bytes()
    leco_size = LecoCodec("linear").encode(values).compressed_size_bytes()
    assert leco_size < for_size


def test_variable_partitioning_helps_where_advertised():
    """§3.2.3: var-partitioning pays off on locally-easy globally-hard data
    (movieid/house_price family), and the advisor flags those sets."""
    wins = []
    for name in ("movieid", "house_price", "ml"):
        values = load(name, n=20_000).values
        fix = LecoCodec("linear", partitioner="fixed").encode(
            values).compressed_size_bytes()
        var = LecoCodec("linear", partitioner="variable", tau=0.05).encode(
            values).compressed_size_bytes()
        wins.append(var < fix * 1.02)
    assert sum(wins) >= 2


def test_advisor_recommends_variable_for_movieid_like_data():
    values = load("movieid", n=20_000).values
    report = advise_partitioning(values)
    assert report.local < 0.9  # models are fittable locally


def test_delta_random_access_is_sequential_and_slow():
    """§4.3.2's mechanism: Delta must decode a prefix for a point lookup."""
    values = load("booksale", n=10_000).values
    enc = DeltaCodec("fix", partition_size=1000).encode(values)
    decoded = enc.decode_all()
    assert enc.get(999) == decoded[999]  # needs a 999-step prefix walk


def test_string_pipeline_on_kvstore_keys():
    """The RocksDB integration path: LeCo string codec on real key shapes."""
    from repro.core.strings import StringCompressor
    from repro.kvstore import make_records

    records = make_records(2000, value_bytes=16)
    keys = [k for k, _ in records]
    comp = StringCompressor(partition_size=64).encode(keys)
    assert comp.decode_all() == keys
    raw = sum(len(k) for k in keys)
    assert comp.compressed_size_bytes() < raw / 2


def test_engine_and_direct_codec_sizes_agree():
    """The engine's leco chunks must match the standalone codec's sizes."""
    from repro.engine import EncodedColumn

    values = load("ml", n=10_000).values
    col = EncodedColumn(values, "leco", partition_size=1000)
    direct = LecoCodec("linear", partitioner=1000).encode(values)
    assert col.size_bytes() == direct.compressed_size_bytes()


def test_full_microbench_protocol_smoke():
    """measure_codec over two datasets and the full line-up stays lossless
    and produces sane relative numbers."""
    from repro.bench import measure_codec

    for name in ("linear", "movieid"):
        ds = load(name, n=3000)
        ratios = {}
        for codec in standard_codecs(include_rans=False):
            m = measure_codec(codec, ds, n_random=30, repeats=1)
            ratios[codec.name] = m.compression_ratio
        assert ratios["leco-fix"] <= ratios["for"] * 1.01, name
