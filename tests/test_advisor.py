"""Tests for the Hyperparameter-Advisor (features, CART, selector)."""

import numpy as np
import pytest

from repro.core.advisor import (
    CANDIDATES,
    CartClassifier,
    FEATURE_NAMES,
    RegressorSelector,
    extract_features,
    kth_order_deviation,
    optimal_regressor_name,
    subrange_stats,
    training_set,
)


class TestFeatures:
    def test_feature_vector_shape(self):
        values = np.arange(1000, dtype=np.int64)
        feats = extract_features(values)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(feats))

    def test_empty_input(self):
        assert extract_features(np.array([], dtype=np.int64)).shape == (
            len(FEATURE_NAMES),)

    def test_linear_data_has_zero_first_order_deviation(self):
        values = (7 * np.arange(500)).astype(np.int64)
        assert kth_order_deviation(values, 1) == pytest.approx(0.0)

    def test_quadratic_data_has_zero_second_order_deviation(self):
        values = (np.arange(500) ** 2).astype(np.int64)
        assert kth_order_deviation(values, 2) == pytest.approx(0.0)
        assert kth_order_deviation(values, 1) > 0.0

    def test_deviation_short_input(self):
        assert kth_order_deviation(np.array([1, 2]), 3) == 0.0

    def test_subrange_trend_flat_for_linear(self):
        values = (3 * np.arange(2000)).astype(np.int64)
        trend, divergence = subrange_stats(values)
        assert trend == pytest.approx(1.0)
        assert divergence == pytest.approx(0.0)

    def test_subrange_trend_grows_for_exponential(self):
        values = np.round(np.exp(0.01 * np.arange(2000))).astype(np.int64)
        trend, _ = subrange_stats(values)
        assert trend > 1.2

    def test_subrange_short_input(self):
        assert subrange_stats(np.arange(10)) == (1.0, 0.0)


class TestCart:
    def test_fits_separable_data(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(0, 1, (100, 3))
        x1 = rng.normal(5, 1, (100, 3))
        feats = np.vstack([x0, x1])
        labels = np.array([0] * 100 + [1] * 100)
        cart = CartClassifier(max_depth=4).fit(feats, labels)
        assert (cart.predict(feats) == labels).mean() > 0.97

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(1)
        feats = rng.normal(0, 1, (200, 4))
        labels = rng.integers(0, 3, 200)
        cart = CartClassifier(max_depth=3).fit(feats, labels)
        assert cart.depth() <= 3

    def test_single_class(self):
        feats = np.random.default_rng(2).normal(0, 1, (50, 2))
        cart = CartClassifier().fit(feats, np.zeros(50, dtype=np.int64))
        assert set(cart.predict(feats)) == {0}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CartClassifier().predict_one(np.zeros(3))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CartClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nested_splits_learn_a_band(self):
        """Classifying a band a < x < b needs two stacked splits on the
        same feature — exercises recursive tree growth."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 10, (400, 1))
        labels = ((x[:, 0] > 3) & (x[:, 0] < 7)).astype(np.int64)
        cart = CartClassifier(max_depth=3, min_leaf=2).fit(x, labels)
        assert (cart.predict(x) == labels).mean() > 0.98
        assert cart.depth() >= 2


class TestSelector:
    @pytest.fixture(scope="class")
    def selector(self):
        return RegressorSelector(samples_per_class=40, train_length=384)

    def test_training_accuracy_high(self, selector):
        assert selector.training_accuracy() > 0.9

    def test_recommends_linear_for_linear(self, selector):
        values = (5 * np.arange(600) + 17).astype(np.int64)
        assert selector.recommend_name(values) in ("linear", "constant")

    def test_recommends_higher_order_for_cubic(self, selector):
        values = (np.arange(600) ** 3 // 50).astype(np.int64)
        assert selector.recommend_name(values) in ("poly2", "poly3",
                                                   "exponential")

    def test_recommend_returns_regressor(self, selector):
        reg = selector.recommend(np.arange(100, dtype=np.int64))
        assert hasattr(reg, "fit")

    def test_training_set_is_balanced(self):
        feats, labels = training_set(samples_per_class=10, length=128)
        assert len(feats) == 10 * len(CANDIDATES)
        assert np.bincount(labels).tolist() == [10] * len(CANDIDATES)


class TestOptimalSearch:
    def test_optimal_picks_quadratic_for_quadratic(self):
        values = (3 * np.arange(400) ** 2 + 7).astype(np.int64)
        assert optimal_regressor_name(values) in ("poly2", "poly3")

    def test_optimal_picks_cheap_model_for_constant(self):
        values = np.full(500, 9, dtype=np.int64)
        assert optimal_regressor_name(values) == "constant"
