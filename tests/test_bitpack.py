"""Unit and property tests for repro.bitio.bitpack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import (
    BitPackedArray,
    bits_for_range,
    bits_for_signed_maxabs,
    bits_for_unsigned,
    pack_unsigned,
    read_slot,
    unpack_unsigned,
)
from repro.bitio.bitpack import pack_unsigned_big, unpack_unsigned_big


class TestBitsFor:
    def test_zero_needs_no_bits(self):
        assert bits_for_unsigned(0) == 0

    @pytest.mark.parametrize("value,expected", [
        (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9),
        ((1 << 63) - 1, 63), (1 << 63, 64),
    ])
    def test_known_widths(self, value, expected):
        assert bits_for_unsigned(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for_unsigned(-1)

    def test_signed_maxabs_adds_sign_bit(self):
        assert bits_for_signed_maxabs(0) == 0
        assert bits_for_signed_maxabs(1) == 2
        assert bits_for_signed_maxabs(127) == 8
        assert bits_for_signed_maxabs(128) == 9

    def test_range_is_unsigned_width(self):
        assert bits_for_range(0) == 0
        assert bits_for_range(7) == 3


class TestPackUnpack:
    def test_empty(self):
        assert pack_unsigned(np.empty(0, dtype=np.uint64), 5) == b""
        assert unpack_unsigned(b"", 5, 0).size == 0

    def test_width_zero_roundtrip(self):
        values = np.zeros(17, dtype=np.uint64)
        assert pack_unsigned(values, 0) == b""
        out = unpack_unsigned(b"", 0, 17)
        assert np.array_equal(out, values)

    def test_width_zero_rejects_nonzero(self):
        with pytest.raises(ValueError):
            pack_unsigned(np.array([1], dtype=np.uint64), 0)

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            pack_unsigned(np.array([8], dtype=np.uint64), 3)

    def test_width_out_of_range(self):
        with pytest.raises(ValueError):
            pack_unsigned(np.array([1], dtype=np.uint64), 65)

    @given(st.lists(st.integers(0, (1 << 64) - 1), max_size=200),
           st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, raw, width):
        limit = (1 << width) - 1
        values = np.array([v & limit for v in raw], dtype=np.uint64)
        packed = pack_unsigned(values, width)
        assert len(packed) == (len(values) * width + 7) // 8
        out = unpack_unsigned(packed, width, len(values))
        assert np.array_equal(out, values)

    @given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=80),
           st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_read_slot_matches_unpack(self, raw, width):
        limit = (1 << width) - 1
        values = np.array([v & limit for v in raw], dtype=np.uint64)
        packed = pack_unsigned(values, width)
        unpacked = unpack_unsigned(packed, width, len(values))
        for i in range(len(values)):
            assert read_slot(packed, width, i) == unpacked[i]


class TestBigPacking:
    def test_beyond_64_bit_roundtrip(self):
        values = [(1 << 100) + i * 31 for i in range(50)]
        width = 101
        packed = pack_unsigned_big(values, width)
        for i, v in enumerate(values):
            assert read_slot(packed, width, i) == v

    def test_big_value_too_large(self):
        with pytest.raises(ValueError):
            pack_unsigned_big([1 << 10], 10)

    @given(st.lists(st.integers(0, (1 << 90) - 1), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_big_roundtrip_property(self, values):
        packed = pack_unsigned_big(values, 90)
        for i, v in enumerate(values):
            assert read_slot(packed, 90, i) == v


class TestBitPackedArray:
    def test_from_values_auto_width(self):
        arr = BitPackedArray.from_values(np.array([0, 5, 3], dtype=np.uint64))
        assert arr.width == 3
        assert len(arr) == 3
        assert list(arr.to_numpy()) == [0, 5, 3]

    def test_getitem_negative_index(self):
        arr = BitPackedArray.from_values(np.array([9, 7], dtype=np.uint64))
        assert arr[-1] == 7

    def test_getitem_out_of_range(self):
        arr = BitPackedArray.from_values(np.array([1], dtype=np.uint64))
        with pytest.raises(IndexError):
            arr[1]

    def test_bad_slice(self):
        arr = BitPackedArray.from_values(np.array([1, 2], dtype=np.uint64))
        with pytest.raises(IndexError):
            arr.slice(1, 3)

    def test_truncated_buffer_rejected(self):
        with pytest.raises(ValueError):
            BitPackedArray(b"\x00", width=8, count=10)

    @given(st.lists(st.integers(0, 10 ** 12), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_serialisation_roundtrip(self, raw):
        values = np.array(raw, dtype=np.uint64)
        arr = BitPackedArray.from_values(values)
        blob = arr.to_bytes()
        out, consumed = BitPackedArray.from_bytes(blob)
        assert consumed == len(blob)
        assert np.array_equal(out.to_numpy(), values)

    @given(st.lists(st.integers(0, 10 ** 9), min_size=1, max_size=120),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_slice_matches_full_decode(self, raw, data):
        values = np.array(raw, dtype=np.uint64)
        arr = BitPackedArray.from_values(values)
        lo = data.draw(st.integers(0, len(values)))
        hi = data.draw(st.integers(lo, len(values)))
        assert np.array_equal(arr.slice(lo, hi), values[lo:hi])

    def test_object_dtype_from_values(self):
        values = np.array([1 << 70, 5, 0], dtype=object)
        arr = BitPackedArray.from_values(values)
        assert arr.width == 71
        assert arr[0] == 1 << 70
        assert arr[1] == 5
        assert arr[2] == 0


class TestKernelAllWidths:
    """Exhaustive coverage of the word-parallel kernels, widths 0-64."""

    @pytest.mark.parametrize("width", list(range(0, 65)))
    def test_roundtrip_every_width(self, width):
        rng = np.random.default_rng(width)
        for n in (0, 1, 7, 8, 9, 63, 64, 65, 301):
            if width == 0:
                values = np.zeros(n, dtype=np.uint64)
            elif width == 64:
                values = (rng.integers(0, 1 << 62, n, dtype=np.uint64)
                          * np.uint64(4)
                          + rng.integers(0, 4, n, dtype=np.uint64))
            else:
                values = rng.integers(0, 1 << width, n, dtype=np.uint64)
            packed = pack_unsigned(values, width)
            assert len(packed) == (n * width + 7) // 8
            assert np.array_equal(unpack_unsigned(packed, width, n), values)

    @pytest.mark.parametrize("width", [1, 3, 5, 7, 9, 13, 31, 33, 57, 59, 63])
    def test_unaligned_slice_starts(self, width):
        """Slices starting at every bit phase 1-7 decode correctly."""
        rng = np.random.default_rng(width)
        n = 120
        values = rng.integers(0, 1 << width, n, dtype=np.uint64)
        arr = BitPackedArray.from_values(values, width)
        seen_phases = set()
        for start in range(n):
            phase = (start * width) & 7
            if phase in seen_phases and start > 16:
                continue
            seen_phases.add(phase)
            stop = min(n, start + 11)
            assert np.array_equal(arr.slice(start, stop),
                                  values[start:stop]), (width, start)

    def test_width64_max_values(self):
        values = np.array([(1 << 64) - 1, 0, (1 << 63), 1], dtype=np.uint64)
        packed = pack_unsigned(values, 64)
        assert np.array_equal(unpack_unsigned(packed, 64, 4), values)
        arr = BitPackedArray(packed, 64, 4)
        assert arr[0] == (1 << 64) - 1
        assert np.array_equal(arr.gather(np.array([0, 2, 0])),
                              np.array([(1 << 64) - 1, 1 << 63,
                                        (1 << 64) - 1], dtype=np.uint64))

    def test_empty_everything(self):
        arr = BitPackedArray.from_values(np.empty(0, dtype=np.uint64))
        assert arr.width == 0
        assert arr.slice(0, 0).size == 0
        assert arr.gather(np.empty(0, dtype=np.int64)).size == 0
        assert arr.to_numpy().size == 0


class TestGather:
    @given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=150),
           st.integers(1, 64), st.data())
    @settings(max_examples=60, deadline=None)
    def test_gather_matches_getitem(self, raw, width, data):
        limit = (1 << width) - 1
        values = np.array([v & limit for v in raw], dtype=np.uint64)
        arr = BitPackedArray.from_values(values, width)
        k = data.draw(st.integers(0, 40))
        idx = data.draw(st.lists(
            st.integers(-len(values), len(values) - 1),
            min_size=k, max_size=k))
        idx = np.array(idx, dtype=np.int64)
        got = arr.gather(idx)
        expected = np.array([arr[int(i)] for i in idx], dtype=np.uint64)
        assert np.array_equal(got, expected)

    def test_gather_out_of_range(self):
        arr = BitPackedArray.from_values(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(IndexError):
            arr.gather(np.array([0, 3]))
        with pytest.raises(IndexError):
            arr.gather(np.array([-4]))

    def test_gather_width_zero(self):
        arr = BitPackedArray.from_values(np.zeros(5, dtype=np.uint64))
        assert arr.width == 0
        assert np.array_equal(arr.gather(np.array([4, 0, 2])),
                              np.zeros(3, dtype=np.uint64))

    def test_gather_beyond_64_bits(self):
        values = [(1 << 90) + 17 * i for i in range(40)]
        arr = BitPackedArray.from_values(np.array(values, dtype=object))
        idx = np.array([39, 0, 13, 13, 7])
        assert list(arr.gather(idx)) == [values[i] for i in idx]


class TestBigWidthSlice:
    """Regression coverage for the string extension's >64-bit widths."""

    def test_slice_matches_read_slot(self):
        values = [(1 << 100) + 31 * i for i in range(60)]
        arr = BitPackedArray.from_values(np.array(values, dtype=object),
                                         width=101)
        out = arr.slice(11, 47)
        assert out.dtype == object
        assert list(out) == values[11:47]
        assert list(arr.to_numpy()) == values

    @given(st.lists(st.integers(0, (1 << 77) - 1), min_size=1, max_size=50),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_big_slice_property(self, values, data):
        arr = BitPackedArray.from_values(np.array(values, dtype=object),
                                         width=77)
        lo = data.draw(st.integers(0, len(values)))
        hi = data.draw(st.integers(lo, len(values)))
        assert list(arr.slice(lo, hi)) == values[lo:hi]

    def test_unpack_big_with_bit_offset(self):
        values = [(1 << 70) - 1 - i for i in range(20)]
        packed = pack_unsigned_big(values, 71)
        for start in (0, 1, 5, 19):
            got = unpack_unsigned_big(packed, 71, 20 - start,
                                      bit_offset=start * 71)
            assert got == values[start:]


class TestFromBytesValidation:
    def test_truncated_payload_rejected(self):
        arr = BitPackedArray.from_values(
            np.arange(100, dtype=np.uint64))
        blob = arr.to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            BitPackedArray.from_bytes(blob[:-1])

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            BitPackedArray.from_bytes(b"\x07\x00\x00")

    def test_exact_buffer_accepted(self):
        arr = BitPackedArray.from_values(np.arange(100, dtype=np.uint64))
        blob = arr.to_bytes()
        out, consumed = BitPackedArray.from_bytes(blob)
        assert consumed == len(blob)
        assert np.array_equal(out.to_numpy(), np.arange(100))

    def test_offset_points_past_end(self):
        with pytest.raises(ValueError, match="truncated"):
            BitPackedArray.from_bytes(b"", offset=3)


class TestGatherTailWindows:
    """Edge slots whose covering window would run past the buffer end."""

    @pytest.mark.parametrize("width", [5, 13, 58, 61, 64])
    def test_last_slots_gather_correctly(self, width):
        rng = np.random.default_rng(width)
        for n in (1, 2, 3, 20):
            values = rng.integers(0, 1 << min(width, 62), n, dtype=np.uint64)
            arr = BitPackedArray.from_values(values, width)
            idx = np.array(list(range(n)) + [n - 1] * 5, dtype=np.int64)
            expected = np.array([arr[int(i)] for i in idx], dtype=np.uint64)
            assert np.array_equal(arr.gather(idx), expected)
