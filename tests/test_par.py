"""Tests for ``repro.par`` — the process-tier worker pool (PR 9).

Seven suites:

* **descriptors** — :class:`QueryDescriptor` round-trips JSON and
  pickle losslessly, rejects foreign versions, and refuses sources
  that cannot be rebuilt from a path;
* **worker path property** (hypothesis) — for every integer codec in
  the registry, a plan's pushdown expression survives the real wire
  (``to_json`` → ``json`` → ``pickle`` → ``from_json`` →
  :meth:`WorkerState.run_granule`) with row-for-row identical results
  vs in-process execution;
* **process equivalence** — filters, naive mode, grouped aggregates,
  joins, deletion-vector snapshots and in-memory fallback all return
  the serial answers through a real :class:`ProcessScheduler`;
* the **crash matrix** — an injected ``granule.exec`` crash (a real
  ``os._exit`` mid-granule) is detected, the lane respawns, the granule
  retries once and the query completes with exact rows; a granule that
  kills every worker surfaces a typed :class:`GranuleError`, never a
  hang; ``SIGKILL`` from outside behaves the same; a timed-out query
  abandons its granules and the *next* query on the same lanes is
  correct (stale results are discarded, not misattributed);
* **shared scheduler config** — ``REPRO_THREADS`` and
  :func:`configure_shared_scheduler` precedence, including swapping the
  process-wide pool to the process tier and back;
* **cache gauges** — ``repro_cache_used_bytes`` / ``repro_cache_entries``
  aggregate over every live cache at render time (no last-writer-wins
  clobbering), and function-backed gauges refuse direct mutation;
* **serve integration** — a :class:`TableServer` on
  ``worker_tier="process"`` answers over real sockets with the same
  rows as in-process execution.
"""

import json
import multiprocessing
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import codecs, faults
from repro.datasets import sensor_fixture
from repro.exec import (
    ArraySource,
    ExecTimeout,
    GranuleError,
    Plan,
    ServerBusy,
    col,
)
from repro.exec.errors import CorruptChunkError
from repro.exec.pool import (
    THREADS_ENV,
    configure_shared_scheduler,
    shared_scheduler,
)
from repro.exec.run import execute
from repro.faults import FaultInjector
from repro.mutate import MutableTable
from repro.obs.metrics import parse_text, render_text, set_enabled
from repro.obs.trace import Trace
from repro.par import (
    DESCRIPTOR_VERSION,
    ProcessScheduler,
    QueryDescriptor,
    WorkerState,
    default_start_method,
    describe_query,
)
from repro.par.worker import NeedDescriptor, encode_error, revive_error
from repro.serve import ServeClient, TableServer
from repro.store import Table, write_table
from repro.store.cache import ChunkCache
from repro.store.executor import StoreSource

INT_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_integers]


# ------------------------------------------------------------- fixtures
@pytest.fixture(autouse=True)
def _no_leaked_injector():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    """A serve-able root holding one store table, 'events'."""
    directory = tmp_path_factory.mktemp("par_root")
    write_table(str(directory / "events"), sensor_fixture(6000),
                shard_rows=1500, chunk_rows=256)
    return str(directory)


@pytest.fixture(scope="module")
def source(root):
    with Table.open(os.path.join(root, "events")) as table:
        yield StoreSource(table)


@pytest.fixture(scope="module")
def sched():
    """One module-wide process scheduler (start method honours
    ``REPRO_PAR_START_METHOD`` so CI runs the suite under both)."""
    scheduler = ProcessScheduler(workers=2, name="par-tests")
    yield scheduler
    scheduler.close()


FILTER_PLAN = (Plan.scan(["ts", "sensor_id", "reading"])
               .where(col("reading").between(950, 1100)
                      & (col("status") <= 1)))


def _assert_rows_equal(got, expected):
    assert np.array_equal(got.row_ids, expected.row_ids)
    assert set(got.columns) == set(expected.columns)
    for name in expected.columns:
        assert np.array_equal(np.asarray(got.columns[name]),
                              np.asarray(expected.columns[name])), name


def _merge_partials(parts, names):
    empty = np.empty(0, dtype=np.int64)
    row_ids = np.concatenate([p.row_ids for p in parts]) \
        if parts else empty
    columns = {
        name: np.concatenate([np.asarray(p.columns[name]) for p in parts])
        if parts else empty.copy()
        for name in names
    }
    return row_ids, columns


# ===================================================================
# descriptors
# ===================================================================
class TestDescriptor:
    def test_json_and_pickle_round_trip(self, source):
        desc = describe_query(FILTER_PLAN, source, prune=True,
                              pushdown=True, on_corruption="raise",
                              io_retries=2)
        assert desc is not None
        assert desc.version == (source.table.generation or None)
        assert desc.n_granules == len(source.granules())
        wire = json.loads(json.dumps(desc.to_json()))
        wire = pickle.loads(pickle.dumps(
            wire, protocol=pickle.HIGHEST_PROTOCOL))
        assert wire["v"] == DESCRIPTOR_VERSION
        revived = QueryDescriptor.from_json(wire)
        assert revived == desc
        assert revived.build_plan().to_json() == FILTER_PLAN.to_json()

    def test_foreign_version_is_refused(self, source):
        desc = describe_query(FILTER_PLAN, source, prune=True,
                              pushdown=True, on_corruption="raise",
                              io_retries=2)
        wire = desc.to_json()
        wire["v"] = DESCRIPTOR_VERSION + 1
        with pytest.raises(ValueError, match="descriptor version"):
            QueryDescriptor.from_json(wire)

    def test_memory_sources_are_not_describable(self):
        array = ArraySource({"v": np.arange(100)}, morsel_rows=10)
        desc = describe_query(Plan.scan(["v"]), array, prune=True,
                              pushdown=True, on_corruption="raise",
                              io_retries=2)
        assert desc is None

    def test_fault_spec_round_trip(self):
        inj = FaultInjector(seed=7)
        inj.crash_at("granule.exec", at=2)
        inj.slow_at("io.read", delay_s=0.5, times=3)
        spec = json.loads(json.dumps(inj.to_spec()))
        clone = FaultInjector.from_spec(spec)
        assert clone.to_spec() == inj.to_spec()

    def test_error_envelopes_revive_typed(self):
        cause = CorruptChunkError("checksum mismatch", file="s0.bin",
                                  column="v", row_start=32, n_rows=16)
        err = GranuleError(cause, granule=3, shard="s0.bin", column="v")
        revived = revive_error(
            pickle.loads(pickle.dumps(encode_error(err))), 3)
        assert isinstance(revived, GranuleError)
        assert str(revived) == str(err)
        assert (revived.granule, revived.shard, revived.column) == \
            (3, "s0.bin", "v")
        assert isinstance(revived.cause, CorruptChunkError)
        assert str(revived.cause) == str(cause)
        assert revived.cause.row_start == 32
        other = revive_error(pickle.loads(pickle.dumps(
            encode_error(RuntimeError("generation drift")))), 5)
        assert isinstance(other, GranuleError)
        assert other.granule == 5
        assert "generation drift" in str(other)


# ===================================================================
# worker path property (hypothesis)
# ===================================================================
if HAVE_HYPOTHESIS:
    class TestWorkerPathProperty:
        """The real wire — descriptor JSON through json+pickle into
        :meth:`WorkerState.run_granule` — is row-for-row identical to
        in-process execution, for every integer codec."""

        @pytest.mark.parametrize("codec", INT_CODECS)
        @given(data=st.data())
        @settings(max_examples=4, deadline=None)
        def test_worker_matches_in_process(self, codec,
                                           tmp_path_factory, data):
            raw = data.draw(st.lists(
                st.integers(-(1 << 40), 1 << 40), min_size=1,
                max_size=300))
            values = np.array(raw, dtype=np.int64)
            if codecs.info(codec).requires_sorted:
                values = np.sort(np.abs(values))
            columns = {"v": values,
                       "w": np.arange(len(values), dtype=np.int64)}
            a = data.draw(st.integers(-(1 << 41), 1 << 41))
            b = data.draw(st.integers(-(1 << 41), 1 << 41))
            expr = col("v").between(min(a, b), max(a, b))
            pivot = data.draw(st.integers(0, max(len(values) - 1, 0)))
            other = col("w") >= pivot
            expr = (expr | other) if data.draw(st.booleans()) \
                else (expr & other)
            plan = Plan.scan(["v", "w"]).where(expr)

            path = str(tmp_path_factory.mktemp("wprop") / "t")
            write_table(path, columns, codec=codec, shard_rows=64,
                        chunk_rows=16)
            with Table.open(path) as table:
                src = StoreSource(table)
                expected = plan.execute(src, threads=1)
                desc = describe_query(plan, src, prune=True,
                                      pushdown=True,
                                      on_corruption="raise",
                                      io_retries=2)
                wire = pickle.loads(pickle.dumps(
                    json.loads(json.dumps(desc.to_json())),
                    protocol=pickle.HIGHEST_PROTOCOL))
                revived = QueryDescriptor.from_json(wire)
                assert revived == desc

                state = WorkerState()
                parts = []
                for index in range(len(src.granules())):
                    part = state.run_granule(
                        1, revived if index == 0 else None, index)
                    if part is not None:
                        parts.append(part)
            row_ids, cols = _merge_partials(parts, ("v", "w"))
            assert np.array_equal(row_ids, expected.row_ids)
            for name in ("v", "w"):
                assert np.array_equal(cols[name],
                                      expected.columns[name]), name


# ===================================================================
# process equivalence
# ===================================================================
class TestProcessEquivalence:
    def test_filter_scan_matches(self, source, sched):
        expected = FILTER_PLAN.execute(source, threads=1)
        got = FILTER_PLAN.execute(source, scheduler=sched)
        assert len(expected.row_ids) > 0
        _assert_rows_equal(got, expected)

    def test_naive_mode_matches(self, source, sched):
        expected = FILTER_PLAN.execute(source, threads=1)
        got = FILTER_PLAN.execute(source, scheduler=sched,
                                  prune=False, pushdown=False)
        _assert_rows_equal(got, expected)

    def test_grouped_aggregate_matches(self, source, sched):
        plan = (Plan.scan()
                .where(col("status") <= 1)
                .aggregate({"n": ("count", "reading"),
                            "avg_reading": ("avg", "reading"),
                            "max_ts": ("max", "ts")},
                           group_by="sensor_id"))
        expected = plan.execute(source, threads=1)
        got = plan.execute(source, scheduler=sched)
        assert got.groups == expected.groups
        assert len(got.groups) > 1

    def test_join_matches(self, source, sched):
        plan = (Plan.scan(["ts", "sensor_id"])
                .where(col("reading") >= 1000)
                .join(on="sensor_id",
                      build={"sensor_id": [0, 1, 2, 3],
                             "zone": [10, 11, 12, 13]}))
        expected = plan.execute(source, threads=1)
        got = plan.execute(source, scheduler=sched)
        _assert_rows_equal(got, expected)

    def test_deletion_vector_snapshot_matches(self, tmp_path, sched):
        with MutableTable.create(str(tmp_path / "mt"),
                                 schema=("k", "v"), shard_rows=200,
                                 chunk_rows=50) as table:
            table.append({"k": np.arange(1000),
                          "v": np.arange(1000) * 3})
            table.flush()
            assert table.delete(col("k").between(100, 399)) == 299
            table.flush()
            with table.snapshot() as snap:
                src = StoreSource(snap)
                plan = Plan.scan(["k", "v"]).where(col("v") >= 30)
                expected = plan.execute(src, threads=1)
                got = plan.execute(src, scheduler=sched)
                # the DV bitmap is re-derived worker-side from the
                # pinned generation, never shipped
                assert len(expected.row_ids) == 691
                _assert_rows_equal(got, expected)

    def test_memory_source_falls_back_in_driver(self, sched):
        array = ArraySource(
            {"v": np.arange(5000, dtype=np.int64),
             "w": (np.arange(5000, dtype=np.int64) * 7) % 101},
            morsel_rows=512)
        plan = Plan.scan(["v", "w"]).where(col("w") <= 50)
        expected = plan.execute(array, threads=1)
        got = plan.execute(array, scheduler=sched)
        _assert_rows_equal(got, expected)

    def test_evicted_descriptor_asks_for_resend(self, source):
        desc = describe_query(FILTER_PLAN, source, prune=True,
                              pushdown=True, on_corruption="raise",
                              io_retries=2)
        state = WorkerState(max_pipelines=1)
        state.run_granule(1, desc, 0)
        state.run_granule(2, desc, 0)  # evicts pipeline 1
        with pytest.raises(NeedDescriptor):
            state.run_granule(1, None, 0)
        # resending the descriptor recovers
        assert state.run_granule(1, desc, 0) is not None

    def test_concurrent_queries_thrash_pipeline_lru(self, source):
        """More concurrent queries than MAX_CACHED_PIPELINES on one
        lane: interleaved granules keep evicting each other's cached
        pipelines, so the needdesc/resend path must carry every query
        to the exact in-process answer."""
        expected = FILTER_PLAN.execute(source, threads=1)
        one_lane = ProcessScheduler(workers=1, name="par-thrash")
        results: list = [None] * 20
        errors: list = []

        def query(idx: int) -> None:
            try:
                results[idx] = FILTER_PLAN.execute(source,
                                                   scheduler=one_lane)
            except BaseException as err:
                errors.append(err)

        try:
            threads = [threading.Thread(target=query, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            for got in results:
                _assert_rows_equal(got, expected)
        finally:
            one_lane.close()

    def test_stats_report_the_tier(self, sched):
        stats = sched.stats()
        assert stats["tier"] == "process"
        assert stats["workers"] == 2
        assert stats["start_method"] == default_start_method()
        assert stats["workers_alive"] == 2

    def test_explicit_spawn_scheduler(self, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        spawn_sched = ProcessScheduler(workers=1, start_method="spawn",
                                       name="par-spawn")
        try:
            got = FILTER_PLAN.execute(source, scheduler=spawn_sched)
            _assert_rows_equal(got, expected)
            assert spawn_sched.stats()["start_method"] == "spawn"
        finally:
            spawn_sched.close()

    def test_admission_control_still_applies(self, root):
        inj = FaultInjector()
        inj.slow_at("granule.exec", delay_s=1.5, times=1)
        bounded = ProcessScheduler(workers=1, max_inflight=1,
                                   queue_depth=0, name="par-bounded",
                                   fault_spec=inj.to_spec())
        plan = Plan.scan(["ts"]).where(col("status") == 0)
        errors = []

        def first_query():
            with Table.open(os.path.join(root, "events")) as table:
                try:
                    execute(plan, StoreSource(table), scheduler=bounded)
                except BaseException as err:  # pragma: no cover
                    errors.append(err)

        thread = threading.Thread(target=first_query)
        try:
            thread.start()
            time.sleep(0.4)
            with Table.open(os.path.join(root, "events")) as table:
                with pytest.raises(ServerBusy):
                    execute(plan, StoreSource(table), scheduler=bounded)
        finally:
            thread.join()
            bounded.close()
        assert errors == []


# ===================================================================
# crash matrix
# ===================================================================
class TestCrashMatrix:
    def test_injected_crash_respawns_and_retries(self, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        inj = FaultInjector()
        inj.crash_at("granule.exec", at=2)
        crashy = ProcessScheduler(workers=1, name="par-crash",
                                  fault_spec=inj.to_spec())
        try:
            got = FILTER_PLAN.execute(source, scheduler=crashy)
            _assert_rows_equal(got, expected)
            assert crashy.respawns >= 1
            assert crashy.stats()["workers_alive"] == 1
        finally:
            crashy.close()

    def test_persistent_crash_is_a_typed_error(self, source):
        inj = FaultInjector()
        inj._add("granule.exec", "crash", 1, None)  # every attempt dies
        doomed = ProcessScheduler(workers=1, name="par-doomed",
                                  fault_spec=inj.to_spec())
        try:
            with pytest.raises(GranuleError, match="died twice"):
                FILTER_PLAN.execute(source, scheduler=doomed)
        finally:
            doomed.close()

    def test_external_sigkill_recovers(self, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        victim = ProcessScheduler(workers=1, name="par-kill")
        try:
            got = FILTER_PLAN.execute(source, scheduler=victim)
            _assert_rows_equal(got, expected)
            proc = victim._lanes[0].proc
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10)
            got = FILTER_PLAN.execute(source, scheduler=victim)
            _assert_rows_equal(got, expected)
            assert victim.respawns >= 1
        finally:
            victim.close()

    def test_timeout_abandons_without_poisoning_lanes(self, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        inj = FaultInjector()
        inj.slow_at("granule.exec", delay_s=0.6, times=2)
        slow = ProcessScheduler(workers=1, name="par-slow",
                                fault_spec=inj.to_spec())
        try:
            with pytest.raises(ExecTimeout):
                FILTER_PLAN.execute(source, scheduler=slow,
                                    timeout_s=0.15)
            # the abandoned granules' late results must be discarded by
            # sequence number, not misattributed to the next query
            got = FILTER_PLAN.execute(source, scheduler=slow)
            _assert_rows_equal(got, expected)
        finally:
            slow.close()


# ===================================================================
# shared scheduler configuration
# ===================================================================
class TestSharedSchedulerConfig:
    def test_env_and_explicit_precedence(self, monkeypatch):
        try:
            monkeypatch.setenv(THREADS_ENV, "3")
            assert configure_shared_scheduler().workers == 3
            assert shared_scheduler().workers == 3
            # configure > env
            assert configure_shared_scheduler(workers=2).workers == 2
        finally:
            monkeypatch.delenv(THREADS_ENV, raising=False)
            configure_shared_scheduler()

    def test_invalid_env_value_is_loud(self, monkeypatch):
        for bad in ("zero", "0", "-4"):
            monkeypatch.setenv(THREADS_ENV, bad)
            with pytest.raises(ValueError, match=THREADS_ENV):
                configure_shared_scheduler()
        monkeypatch.delenv(THREADS_ENV, raising=False)
        configure_shared_scheduler()

    def test_invalid_tier_is_loud(self):
        with pytest.raises(ValueError, match="tier"):
            configure_shared_scheduler(tier="fibers")

    def test_process_tier_is_transparent(self, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        try:
            fresh = configure_shared_scheduler(workers=1,
                                               tier="process")
            assert fresh.tier == "process"
            # auto-threaded execute: no scheduler argument at all
            got = FILTER_PLAN.execute(source)
            _assert_rows_equal(got, expected)
        finally:
            assert configure_shared_scheduler().tier == "thread"


# ===================================================================
# cache gauges (aggregate-on-render)
# ===================================================================
class TestCacheGauges:
    def _gauges(self):
        # earlier process-tier tests merge worker copies of these
        # gauges under a ``proc`` label; this test is about the LOCAL
        # function-backed series
        fams = parse_text(render_text())
        [used] = [v for _, lbl, v
                  in fams["repro_cache_used_bytes"]["samples"]
                  if "proc" not in lbl]
        [entries] = [v for _, lbl, v
                     in fams["repro_cache_entries"]["samples"]
                     if "proc" not in lbl]
        return used, entries

    def test_gauges_sum_over_live_caches(self):
        used0, entries0 = self._gauges()
        first = ChunkCache(capacity_bytes=1 << 20)
        second = ChunkCache(capacity_bytes=1 << 20)
        first.get_or_load("a", lambda: "x", 1000)
        second.get_or_load("b", lambda: "y", 2000)
        second.get_or_load("c", lambda: "z", 4000)
        used1, entries1 = self._gauges()
        # two instances add up instead of clobbering each other
        assert used1 - used0 == 7000
        assert entries1 - entries0 == 3
        first.clear()
        used2, entries2 = self._gauges()
        assert used2 - used0 == 6000
        assert entries2 - entries0 == 2

    def test_function_backed_gauges_refuse_mutation(self):
        from repro.store.cache import _M_ENTRIES, _M_USED

        for gauge in (_M_USED, _M_ENTRIES):
            with pytest.raises(ValueError, match="function-backed"):
                gauge.set(5)
            with pytest.raises(ValueError, match="function-backed"):
                gauge.inc()


# ===================================================================
# serve integration
# ===================================================================
class TestServeProcessTier:
    def test_rejects_unknown_tier(self, root):
        with pytest.raises(ValueError, match="worker_tier"):
            TableServer(root, worker_tier="bogus")

    def test_process_tier_end_to_end(self, root, source):
        expected = FILTER_PLAN.execute(source, threads=1)
        srv = TableServer(root, workers=1, worker_tier="process",
                          max_inflight=2, queue_depth=2).start()
        host, port = srv.address
        try:
            with ServeClient(host, port) as client:
                result = client.query("events", FILTER_PLAN)
            assert result["n_rows"] == len(expected.row_ids)
            assert np.array_equal(result["row_ids"], expected.row_ids)
            for name in expected.columns:
                assert np.array_equal(result["columns"][name],
                                      expected.columns[name]), name
        finally:
            srv.shutdown()


# ===================================================================
# cross-process observability (PR 10)
# ===================================================================
class TestCrossProcessObs:
    """Worker telemetry merges under ``proc`` labels, traces cross the
    lane pipe, and the ``REPRO_OBS_DISABLED``/``set_enabled`` kill
    switch silences all of it."""

    @staticmethod
    def _family_total(fams, family, merged=None):
        """Sum of one counter family's samples; ``merged`` narrows to
        proc-labelled (True) or local (False) series."""
        total = 0.0
        for _, labels, value in fams.get(
                family, {"samples": []})["samples"]:
            if merged is not None and ("proc" in labels) != merged:
                continue
            total += value
        return total

    def test_one_scrape_accounts_for_worker_activity(self, source):
        """The tentpole invariant: a thread-tier and a process-tier run
        of the same workload charge the same number of cache lookups to
        the registry — locally for threads, under ``proc`` labels for
        workers — and worker granules surface per-lane."""
        fam = "repro_cache_lookups_total"
        before = parse_text(render_text())
        thread_res = FILTER_PLAN.execute(source, threads=1)
        mid = parse_text(render_text())
        thread_delta = (self._family_total(mid, fam, merged=False)
                        - self._family_total(before, fam, merged=False))
        assert thread_delta > 0

        with ProcessScheduler(workers=2, name="obs-merge") as sched:
            proc_res = FILTER_PLAN.execute(source, scheduler=sched)
        # close() drains each lane's final telemetry flush, so one
        # scrape here accounts for everything the workers did
        after = parse_text(render_text())
        assert np.array_equal(proc_res.row_ids, thread_res.row_ids)
        merged_delta = (self._family_total(after, fam, merged=True)
                        - self._family_total(mid, fam, merged=True))
        local_delta = (self._family_total(after, fam, merged=False)
                       - self._family_total(mid, fam, merged=False))
        # same workload, same chunk traffic — charged worker-side now
        assert merged_delta == thread_delta
        assert local_delta == 0
        granules = (self._family_total(
            after, "repro_par_worker_granules_total", merged=True)
            - self._family_total(
                mid, "repro_par_worker_granules_total", merged=True))
        assert granules == proc_res.stats.granules_total > 0
        # lane-health series exist once a process tier has run
        fams = parse_text(render_text())
        assert "repro_par_pipe_roundtrip_seconds" in fams
        assert "repro_par_dispatch_wait_seconds" in fams

    def test_traced_process_query_spans_match_stats(self, source,
                                                    sched):
        trace = Trace("q")
        res = FILTER_PLAN.execute(source, scheduler=sched, trace=trace)
        stats = res.stats
        granules = [s for s in trace.spans if s.name == "granule"]
        assert len(granules) == stats.granules_total > 0
        for attr, want in (("rows", stats.rows_scanned),
                           ("pruned", stats.granules_pruned),
                           ("cache_hits", stats.cache_hits),
                           ("cache_misses", stats.cache_misses)):
            assert sum(s.attrs[attr] for s in granules) == want, attr
        # every granule ran in a worker: real pid, proc attribution
        here = os.getpid()
        assert {s.attrs["proc"] for s in granules} <= {"w0", "w1"}
        assert all(s.pid and s.pid != here for s in granules)
        # driver-side spans (admit, merge) stay on the driver row;
        # worker-side ones (granule, load, ...) all carry proc + pid
        driver_spans = [s for s in trace.spans
                        if "proc" not in s.attrs]
        assert {s.name for s in driver_spans} >= {"admit"}
        assert all(s.pid == 0 for s in driver_spans)
        assert all(s.pid for s in trace.spans if "proc" in s.attrs)

    def test_chrome_export_shows_worker_process_rows(self, source,
                                                     sched):
        trace = Trace("q")
        FILTER_PLAN.execute(source, scheduler=sched, trace=trace)
        exported = trace.to_chrome()
        meta = [e for e in exported if e["ph"] == "M"]
        events = [e for e in exported if e["ph"] == "X"]
        names = {m["args"]["name"] for m in meta}
        assert "driver" in names and names & {"w0", "w1"}
        assert len({e["pid"] for e in events}) >= 2
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(t >= 0 for t in timestamps)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_traced_equivalence_across_tiers(self, source, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} unavailable")
        thread_trace = Trace("thread")
        FILTER_PLAN.execute(source, threads=1, trace=thread_trace)
        proc_trace = Trace("proc")
        with ProcessScheduler(workers=2, start_method=method,
                              name=f"obs-{method}") as sched:
            FILTER_PLAN.execute(source, scheduler=sched,
                                trace=proc_trace)
        g_thread = [s for s in thread_trace.spans
                    if s.name == "granule"]
        g_proc = [s for s in proc_trace.spans if s.name == "granule"]
        assert len(g_thread) == len(g_proc) > 0
        # rows and prune decisions are tier-invariant; so is *total*
        # cache traffic (the hit/miss split depends on which per-worker
        # cache each granule landed in, so only the sum is comparable)
        for attr in ("rows", "pruned"):
            assert sum(s.attrs[attr] for s in g_thread) \
                == sum(s.attrs[attr] for s in g_proc), attr
        lookups = [sum(s.attrs["cache_hits"] + s.attrs["cache_misses"]
                       for s in spans)
                   for spans in (g_thread, g_proc)]
        assert lookups[0] == lookups[1]

    def test_kill_switch_suppresses_worker_telemetry(self, source):
        """``set_enabled(False)`` before the scheduler spawns reaches
        the workers: no counter family moves, locally or merged."""
        families = ("repro_cache_lookups_total",
                    "repro_par_worker_granules_total",
                    "repro_exec_granules_total",
                    "repro_par_respawns_total")
        before = parse_text(render_text())
        set_enabled(False)
        try:
            with ProcessScheduler(workers=1, name="obs-off") as sched:
                res = FILTER_PLAN.execute(source, scheduler=sched)
        finally:
            set_enabled(True)
        after = parse_text(render_text())
        assert len(res.row_ids) > 0  # the query itself still works
        for fam in families:
            assert self._family_total(after, fam) \
                == self._family_total(before, fam), fam
