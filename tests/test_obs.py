"""Tests for ``repro.obs`` (PR 8): metrics, tracing, and surfaces.

Five suites:

* **metrics conformance** — counters/gauges/histograms (labelled and
  not) round-trip through the Prometheus text exposition, every
  instrument registered anywhere in ``repro`` renders and parses back,
  and concurrent increments from N threads lose no counts;
* the **latency reservoir** — exact quantiles below capacity, bounded
  memory above it, deterministic under a seed;
* **tracing** — a traced 2-granule store query yields spans whose
  granule count, prune counts, and cache attribution exactly match
  ``ExecStats``; Chrome export is valid JSON with monotonic timestamps;
  tracing stays pay-as-you-go (untraced queries carry no trace);
* **serve surfaces** — the ``metrics`` wire op and HTTP ``/metrics``
  endpoint expose populated series, ``/stats`` percentiles read from
  the O(1) reservoir, and the slow-query log captures plan + explain +
  trace as JSONL;
* **scrub/info accounting** — per-shard elapsed time and bytes walked
  in ``scrub --json``, ``info``, and the render CLI.
"""

import json
import os
import pickle
import threading
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ExecTimeout, MorselScheduler, Plan, Range
from repro.obs import __main__ as obs_main
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    MetricsRegistry,
    ReservoirQuantiles,
    parse_text,
    set_enabled,
)
from repro.obs.trace import Trace, render_trace
from repro.serve import ServeClient, TableServer
from repro.store import StoreSource, Table, TableWriter
from repro.store import cli as store_cli
from repro.store.scrub import scrub_table


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_table(path: str, n: int = 1024, chunk_rows: int = 512,
               shard_rows: int = 1024) -> None:
    """A store table whose ``val`` column equals the row index."""
    with TableWriter(path, codec="auto", shard_rows=shard_rows,
                     chunk_rows=chunk_rows) as writer:
        writer.append({"val": np.arange(n, dtype=np.int64),
                       "grp": np.arange(n, dtype=np.int64) % 7})


# ===================================================================
# metrics conformance
# ===================================================================
class TestMetricsConformance:
    def test_counter_roundtrip(self, registry):
        c = registry.counter("t_requests_total", "requests",
                             labels=("op",))
        c.labels(op="query").inc(3)
        c.labels(op="ping").inc()
        fams = parse_text(registry.render())
        fam = fams["t_requests_total"]
        assert fam["type"] == "counter"
        assert fam["help"] == "requests"
        by_label = {s[1]["op"]: s[2] for s in fam["samples"]}
        assert by_label == {"query": 3.0, "ping": 1.0}

    def test_gauge_roundtrip(self, registry):
        g = registry.gauge("t_inflight", "in flight")
        g.set(5)
        g.dec(2)
        fams = parse_text(registry.render())
        assert fams["t_inflight"]["type"] == "gauge"
        assert fams["t_inflight"]["samples"] == [("t_inflight", {}, 3.0)]

    def test_histogram_roundtrip_cumulative(self, registry):
        h = registry.histogram("t_seconds", "latency",
                               buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        fams = parse_text(registry.render())
        fam = fams["t_seconds"]
        assert fam["type"] == "histogram"
        buckets = {s[1]["le"]: s[2] for s in fam["samples"]
                   if s[0] == "t_seconds_bucket"}
        # cumulative: 1 under 0.1, 3 under 1.0, all 4 under +Inf
        assert buckets == {"0.1": 1.0, "1": 3.0, "+Inf": 4.0}
        assert [s[2] for s in fam["samples"]
                if s[0] == "t_seconds_count"] == [4.0]
        [total] = [s[2] for s in fam["samples"]
                   if s[0] == "t_seconds_sum"]
        assert total == pytest.approx(6.05)

    def test_label_escaping_roundtrip(self, registry):
        c = registry.counter("t_weird_total", "x", labels=("path",))
        value = 'a"b\\c\nd'
        c.labels(path=value).inc()
        fams = parse_text(registry.render())
        [(_, labels, v)] = fams["t_weird_total"]["samples"]
        assert labels == {"path": value} and v == 1.0

    def test_get_or_create_and_conflicts(self, registry):
        c1 = registry.counter("t_total", "x")
        assert registry.counter("t_total") is c1
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("t_total", labels=("op",))
        with pytest.raises(ValueError, match="bad metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="only go up"):
            c1.inc(-1)
        with pytest.raises(ValueError, match="labels"):
            registry.counter("t_lbl_total", labels=("a",)).labels(b="x")

    def test_every_repro_metric_roundtrips(self):
        # importing the instrumented stack registers every series the
        # process exposes; each must render and parse back faithfully
        import repro.exec.pool  # noqa: F401
        import repro.exec.run  # noqa: F401
        import repro.mutate.compact  # noqa: F401
        import repro.mutate.manifest  # noqa: F401
        import repro.mutate.table  # noqa: F401
        import repro.mutate.wal  # noqa: F401
        import repro.serve.server  # noqa: F401
        import repro.store.cache  # noqa: F401
        import repro.store.table  # noqa: F401

        reg = obs_metrics.default_registry()
        instruments = reg.instruments()
        assert len(instruments) >= 20
        names = {i.name for i in instruments}
        for expected in ("repro_sched_queries_total",
                         "repro_sched_park_wait_seconds",
                         "repro_cache_lookups_total",
                         "repro_exec_queries_total",
                         "repro_exec_cpu_seconds_total",
                         "repro_store_shards_opened_total",
                         "repro_wal_appends_total",
                         "repro_wal_fsync_seconds",
                         "repro_mutate_flush_seconds",
                         "repro_mutate_generations_total",
                         "repro_mutate_compact_passes_total",
                         "repro_serve_requests_total"):
            assert expected in names
        fams = parse_text(reg.render())
        for inst in instruments:
            assert fams[inst.name]["type"] == inst.kind, inst.name
            if inst.kind == "histogram":
                sample_names = {s[0] for s in fams[inst.name]["samples"]}
                if sample_names:  # labelled histograms may have no child
                    assert f"{inst.name}_count" in sample_names
                    assert f"{inst.name}_bucket" in sample_names
            for _, labels, _ in fams[inst.name]["samples"]:
                got = set(labels) - {"le"}
                # series merged in from worker processes carry one
                # extra bounded label: proc="w<lane>"
                want = set(inst.labelnames)
                assert got in (want, want | {"proc"}), inst.name

    def test_concurrent_increments_lose_no_counts(self, registry):
        c = registry.counter("t_conc_total", "x")
        lc = registry.counter("t_conc_lbl_total", "x", labels=("who",))
        h = registry.histogram("t_conc_seconds", "x", buckets=(0.5,))
        n_threads, per_thread = 8, 5_000

        def hammer(i: int) -> None:
            child = lc.labels(who=str(i % 2))
            for _ in range(per_thread):
                c.inc()
                child.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert c.value == total
        assert sum(child.value
                   for child in lc.children().values()) == total
        _, hist_sum, count = h._default_child().snapshot()
        assert count == total
        assert hist_sum == pytest.approx(0.25 * total)

    def test_set_enabled_kill_switch(self, registry):
        c = registry.counter("t_off_total", "x")
        c.inc()
        set_enabled(False)
        try:
            c.inc(100)
            registry.gauge("t_off_gauge").set(9)
            registry.histogram("t_off_seconds").observe(1.0)
        finally:
            set_enabled(True)
        assert c.value == 1
        assert registry.gauge("t_off_gauge").value == 0
        c.inc()
        assert c.value == 2


class TestSnapshotMerge:
    """The cross-process protocol: snapshot → pickle → merge."""

    def test_basic_kinds_merge_under_proc_label(self, registry):
        registry.counter("repro_m_total", "c", ("k",)) \
            .labels(k="x").inc(5)
        registry.gauge("repro_m_gauge", "g").set(2.5)
        h = registry.histogram("repro_m_seconds", "h",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        delta = obs_metrics.snapshot_delta(None, registry.snapshot())
        dst = MetricsRegistry()
        dst.merge(pickle.loads(pickle.dumps(delta)), proc="w0")
        fams = parse_text(dst.render())
        [(_, labels, v)] = [
            s for s in fams["repro_m_total"]["samples"]]
        assert labels == {"k": "x", "proc": "w0"} and v == 5
        assert any(labels == {"proc": "w0"} and v == 2.5
                   for _, labels, v in fams["repro_m_gauge"]["samples"])
        counts = {labels["le"]: v for name, labels, v
                  in fams["repro_m_seconds"]["samples"]
                  if name.endswith("_bucket")}
        assert counts == {"0.1": 1, "1": 1, "+Inf": 2}

    def test_function_backed_gauge_snapshots_its_value(self, registry):
        g = registry.gauge("repro_m_live", "g")
        g.set_function(lambda: 42.0)
        snap = registry.snapshot()
        assert snap["repro_m_live"]["series"][()] == 42.0

    def test_delta_ships_only_changes(self, registry):
        c = registry.counter("repro_m_total", "c")
        g = registry.gauge("repro_m_gauge", "g")
        c.inc(3)
        g.set(1.0)
        first = registry.snapshot()
        assert set(obs_metrics.snapshot_delta(None, first)) == \
            {"repro_m_total", "repro_m_gauge"}
        c.inc(2)
        delta = obs_metrics.snapshot_delta(first, registry.snapshot())
        assert set(delta) == {"repro_m_total"}
        assert delta["repro_m_total"]["series"][()] == 2
        # nothing changed since: an idle process ships nothing
        second = registry.snapshot()
        assert obs_metrics.snapshot_delta(second,
                                          registry.snapshot()) == {}

    def test_counter_regression_resends_full_value(self, registry):
        c = registry.counter("repro_m_total", "c")
        c.inc(10)
        old = registry.snapshot()
        # a respawned worker restarts from zero: the next delta must
        # carry its full (new) total, never a negative amount
        fresh = MetricsRegistry()
        fresh.counter("repro_m_total", "c").inc(4)
        delta = obs_metrics.snapshot_delta(old, fresh.snapshot())
        assert delta["repro_m_total"]["series"][()] == 4

    def test_merge_conflicts_raise(self, registry):
        registry.counter("repro_m_total", "c").inc()
        delta = obs_metrics.snapshot_delta(None, registry.snapshot())
        dst = MetricsRegistry()
        dst.gauge("repro_m_total", "not a counter")
        with pytest.raises(ValueError, match="already registered"):
            dst.merge(delta, proc="w0")
        other = MetricsRegistry()
        other.histogram("repro_m_seconds", "h", buckets=(0.5,)) \
            .observe(0.1)
        hdelta = obs_metrics.snapshot_delta(None, other.snapshot())
        dst2 = MetricsRegistry()
        dst2.histogram("repro_m_seconds", "h", buckets=(0.25, 2.0))
        with pytest.raises(ValueError):
            dst2.merge(hdelta, proc="w0")

    def test_merged_series_accumulate_per_proc(self, registry):
        registry.counter("repro_m_total", "c").inc(2)
        d1 = obs_metrics.snapshot_delta(None, registry.snapshot())
        dst = MetricsRegistry()
        dst.merge(d1, proc="w0")
        dst.merge(d1, proc="w1")
        dst.merge(d1, proc="w0")
        remote = dst.get("repro_m_total").remote_children()
        assert remote[("w0",)].value == 4
        assert remote[("w1",)].value == 2

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_snapshot_pickle_merge_lossless(self, data):
        """Any mix of kinds, label sets, and escaping-hostile label
        values survives snapshot → pickle → merge → render → parse
        with every non-zero series intact (zero-from-birth series are
        documented as dropped)."""
        label_text = st.text(min_size=0, max_size=8)
        src = MetricsRegistry()
        for i in range(data.draw(st.integers(1, 4), label="n_inst")):
            kind = data.draw(st.sampled_from(
                ("counter", "gauge", "histogram")), label="kind")
            labelnames = tuple(data.draw(
                st.lists(st.sampled_from(("a", "b")), unique=True,
                         max_size=2), label="labels"))
            name = f"repro_prop_{i}" + \
                ("_total" if kind == "counter" else "")
            if kind == "counter":
                inst = src.counter(name, "p", labelnames)
            elif kind == "gauge":
                inst = src.gauge(name, "p", labelnames)
            else:
                inst = src.histogram(name, "p", labelnames,
                                     buckets=(0.1, 1.0))
            for _ in range(data.draw(st.integers(1, 3),
                                     label="n_series")):
                values = {n: data.draw(label_text, label="lv")
                          for n in labelnames}
                child = inst.labels(**values) if labelnames else inst
                if kind == "counter":
                    child.inc(data.draw(st.integers(0, 10_000),
                                        label="amount"))
                elif kind == "gauge":
                    child.set(data.draw(
                        st.floats(-1e6, 1e6, allow_nan=False),
                        label="value"))
                else:
                    for v in data.draw(
                            st.lists(st.floats(0, 100,
                                               allow_nan=False),
                                     max_size=4), label="obs"):
                        child.observe(v)
        delta = obs_metrics.snapshot_delta(None, src.snapshot())
        dst = MetricsRegistry()
        dst.merge(pickle.loads(pickle.dumps(delta)), proc="w9")
        src_fams = parse_text(src.render())
        dst_fams = parse_text(dst.render())
        for fam_name, fam in src_fams.items():
            hist = fam["type"] == "histogram"
            # histogram series that never observed are dropped by the
            # delta; identify them per-series (labels minus "le")
            empty = {tuple(sorted(lb.items()))
                     for name, lb, v in fam["samples"]
                     if name.endswith("_count") and v == 0} \
                if hist else set()
            for sample_name, labels, value in fam["samples"]:
                base = tuple(sorted((k, v) for k, v in labels.items()
                                    if k != "le"))
                if hist and base in empty:
                    continue
                if not hist and value == 0:
                    continue  # zero-from-birth series are dropped
                expected = dict(labels)
                expected["proc"] = "w9"
                assert (sample_name, expected, value) in [
                    (n, dict(lb), v)
                    for n, lb, v in dst_fams[fam_name]["samples"]], \
                    (fam_name, sample_name, labels, value)

    def test_env_kill_switch_disables_at_import(self):
        import subprocess
        import sys

        code = ("from repro.obs import metrics as m; "
                "m.counter('repro_env_total', 'x').inc(); "
                "print(m.enabled(), "
                "m.default_registry().get('repro_env_total').value)")
        env = dict(os.environ, REPRO_OBS_DISABLED="1",
                   PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=REPO_ROOT,
            capture_output=True, text=True, check=True)
        assert out.stdout.split() == ["False", "0.0"]


class TestReservoir:
    def test_exact_below_capacity(self):
        r = ReservoirQuantiles(size=100)
        for v in range(1, 101):
            r.observe(float(v))
        assert r.count == 100 and len(r) == 100
        assert r.quantile(0.0) == 1.0
        assert r.quantile(1.0) == 100.0
        assert r.quantile(0.5) == pytest.approx(50.5)

    def test_bounded_memory_and_plausible_sample(self):
        r = ReservoirQuantiles(size=256, seed=7)
        for v in range(100_000):
            r.observe(float(v))
        assert len(r) == 256 and r.count == 100_000
        # a uniform sample of 0..1e5: the median lands mid-range
        assert 30_000 < r.quantile(0.5) < 70_000

    def test_deterministic_under_seed(self):
        a, b = (ReservoirQuantiles(size=64, seed=3) for _ in range(2))
        for v in range(10_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.quantiles(0.5, 0.9, 0.99) == b.quantiles(0.5, 0.9, 0.99)

    def test_empty(self):
        r = ReservoirQuantiles(size=8)
        assert r.quantiles(0.5, 0.99) == [0.0, 0.0]
        with pytest.raises(ValueError):
            ReservoirQuantiles(size=0)


# ===================================================================
# tracing
# ===================================================================
class TestTracing:
    def test_traced_two_granule_query_matches_stats(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)  # 1024 rows = exactly 2 granules of 512
        with Table.open(path) as table:
            source = StoreSource(table)
            # warm the cache so the traced run shows real hits
            Plan.scan(("val",)).where(
                Range("val", 0, 1024)).execute(source, threads=1)
            trace = Trace("q", table=path)
            res = Plan.scan(("val",)).where(
                Range("val", 0, 100)).execute(source, threads=1,
                                              trace=trace)
        stats = res.stats
        assert stats.granules_total == 2
        assert stats.granules_pruned == 1  # zone maps drop rows 512+
        granule_spans = [s for s in trace.spans if s.name == "granule"]
        assert len(granule_spans) == stats.granules_total
        assert sum(s.attrs["pruned"] for s in granule_spans) \
            == stats.granules_pruned
        assert sum(s.attrs["cache_hits"] for s in granule_spans) \
            == stats.cache_hits
        assert sum(s.attrs["cache_misses"] for s in granule_spans) \
            == stats.cache_misses
        assert sum(s.attrs["rows"] for s in granule_spans) \
            == stats.rows_scanned
        names = {s.name for s in trace.spans}
        assert {"granule", "filter", "gather", "load", "merge"} <= names
        assert res.trace is trace
        assert "trace:" in res.explain().splitlines()[-1]

    def test_untraced_query_pays_nothing(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        with Table.open(path) as table:
            res = Plan.scan(("val",)).execute(StoreSource(table),
                                              threads=1)
        assert res.trace is None
        assert "trace:" not in res.explain()

    def test_scheduler_spans(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        trace = Trace("q")
        with MorselScheduler(workers=2, name="t-obs") as sched, \
                Table.open(path) as table:
            Plan.scan(("val",)).execute(StoreSource(table),
                                        scheduler=sched, trace=trace)
        names = [s.name for s in trace.spans]
        assert "admit" in names and "granule" in names

    def test_chrome_export_valid_and_monotonic(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        trace = Trace("q")
        with Table.open(path) as table:
            Plan.scan(("val",)).where(Range("val", 0, 600)).execute(
                StoreSource(table), trace=trace)
        exported = json.loads(json.dumps(trace.to_chrome()))
        meta = [e for e in exported if e["ph"] == "M"]
        events = [e for e in exported if e["ph"] != "M"]
        assert len(events) == len(trace.spans) > 0
        # all spans ran locally: one real-pid process row named driver
        assert [m["args"]["name"] for m in meta] == ["driver"]
        assert meta[0]["pid"] == os.getpid()
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        for e in events:
            assert e["ph"] == "X" and e["dur"] >= 0
            assert e["pid"] == os.getpid()
            assert isinstance(e["tid"], int)

    def test_json_roundtrip_and_summary(self):
        trace = Trace("demo", table="x")
        with trace.span("load", column="val") as attrs:
            attrs["rows"] = 7
        trace.add("merge", 0.5, 0.6)
        revived = Trace.from_json(json.loads(
            json.dumps(trace.to_json())))
        assert revived.query == "demo"
        assert [s.name for s in revived.spans] == ["load", "merge"]
        assert revived.spans[0].attrs == {"column": "val", "rows": 7}
        assert "2 spans" in trace.summary()

    def test_concurrent_traces_stay_separate(self, tmp_path):
        # two queries traced through ONE shared scheduler: each trace
        # must hold exactly its own query's granules (the reason the
        # context travels as a parameter, not a thread-local)
        path_a, path_b = str(tmp_path / "a"), str(tmp_path / "b")
        make_table(path_a, n=2048, chunk_rows=256, shard_rows=2048)
        make_table(path_b, n=1024, chunk_rows=256, shard_rows=1024)
        with MorselScheduler(workers=4, name="t-obs2") as sched, \
                Table.open(path_a) as ta, Table.open(path_b) as tb:
            traces = [Trace("a"), Trace("b")]
            results = [None, None]

            def run(i, table):
                results[i] = Plan.scan(("val",)).execute(
                    StoreSource(table), scheduler=sched,
                    trace=traces[i])

            threads = [threading.Thread(target=run, args=(0, ta)),
                       threading.Thread(target=run, args=(1, tb))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(2):
            granules = [s for s in traces[i].spans
                        if s.name == "granule"]
            assert len(granules) == results[i].stats.granules_total
            assert {s.attrs["granule"] for s in granules} \
                == set(range(len(granules)))


# ===================================================================
# serve surfaces
# ===================================================================
@pytest.fixture
def served(tmp_path):
    root = str(tmp_path / "root")
    os.makedirs(root)
    make_table(os.path.join(root, "events"))
    return root


class TestServeSurfaces:
    def test_metrics_wire_op(self, served):
        with TableServer(served, max_inflight=4) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events",
                             Plan.scan(("val",)).where(
                                 Range("val", 0, 50)))
                text = client.metrics()
        fams = parse_text(text)
        assert fams["repro_serve_requests_total"]["type"] == "counter"
        served_ok = [
            v for name, labels, v
            in fams["repro_serve_requests_total"]["samples"]
            if labels.get("op") == "query" and labels.get("status") == "ok"]
        assert served_ok and served_ok[0] >= 1
        # executor + scheduler + cache series all populated
        assert any(v > 0 for _, labels, v
                   in fams["repro_exec_queries_total"]["samples"]
                   if labels.get("status") == "ok")
        assert any(labels.get("sched") == "repro-serve" and v > 0
                   for _, labels, v
                   in fams["repro_sched_granules_total"]["samples"])
        assert any(v > 0 for _, _, v
                   in fams["repro_cache_lookups_total"]["samples"])

    def test_http_metrics_endpoint(self, served):
        with TableServer(served, metrics_port=0) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events", Plan.scan(("val",)))
            mhost, mport = server.metrics_address
            with urllib.request.urlopen(
                    f"http://{mhost}:{mport}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain")
                body = resp.read().decode("utf-8")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{mhost}:{mport}/nope")
        fams = parse_text(body)
        assert "repro_serve_requests_total" in fams
        assert "repro_exec_queries_total" in fams

    def test_stats_reservoir_latency(self, served):
        with TableServer(served) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for _ in range(5):
                    client.query("events", Plan.scan(("val",)).where(
                        Range("val", 0, 10)))
                stats = client.stats()
        latency = stats["latency_ms"]
        assert {"p50", "p90", "p99", "window", "observed"} <= set(latency)
        assert latency["observed"] == 5
        assert latency["window"] == 5
        assert 0 < latency["p50"] <= latency["p99"]

    def test_slow_query_log_records_plan_explain_trace(self, served,
                                                       tmp_path,
                                                       capsys):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=0.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                plan = Plan.scan(("val",)).where(Range("val", 0, 99))
                client.query("events", plan)
                client.explain("events", plan)
        lines = [json.loads(line)
                 for line in open(log, encoding="utf-8")]
        assert len(lines) == 2
        record = lines[0]
        assert record["op"] == "query" and record["table"] == "events"
        assert record["elapsed_ms"] > 0 and record["timed_out"] is False
        assert record["plan"]["nodes"]  # the plan JSON round-trips
        assert "Scan[" in record["explain"]
        span_names = {s["name"] for s in record["trace"]["spans"]}
        assert "granule" in span_names and "admit" in span_names
        # cross-process context: which tier ran it, granules per lane
        assert record["worker_tier"] == "thread"
        assert record["lanes"] == {
            "driver": sum(1 for s in record["trace"]["spans"]
                          if s["name"] == "granule")}
        # the render CLI understands slow-query JSONL directly and
        # surfaces the tier/lane context
        assert obs_main.main(["render", log]) == 0
        rendered = capsys.readouterr().out
        assert "worker_tier" in rendered and "thread" in rendered

    def test_slow_query_threshold_filters(self, served, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=60_000.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events", Plan.scan(("val",)))
        assert not os.path.exists(log)

    def test_timeout_lands_in_slow_log(self, served, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=0.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                with pytest.raises(ExecTimeout):
                    client.query("events", Plan.scan(("val",)),
                                 timeout_s=1e-9)
        records = [json.loads(line)
                   for line in open(log, encoding="utf-8")]
        assert any(r["timed_out"] for r in records)


# ===================================================================
# scrub / info accounting + render CLI
# ===================================================================
class TestScrubInfoAccounting:
    def test_scrub_reports_time_and_bytes(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path, n=2048, shard_rows=1024)
        report = scrub_table(path)
        assert report.ok and len(report.shards) == 2
        for shard in report.shards:
            assert shard.bytes_walked > 0
            assert shard.elapsed_s > 0
        assert report.bytes_walked == sum(s.bytes_walked
                                          for s in report.shards)
        assert "walked:" in report.summary()

    def test_scrub_json_cli(self, tmp_path, capsys):
        path = str(tmp_path / "t")
        make_table(path)
        assert store_cli.main(["scrub", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["bytes_walked"] > 0 and payload["elapsed_s"] > 0
        for shard in payload["shards"]:
            assert shard["bytes_walked"] > 0
            assert shard["elapsed_s"] > 0

    def test_info_reports_per_shard(self, tmp_path, capsys):
        path = str(tmp_path / "t")
        make_table(path, n=2048, shard_rows=1024)
        assert store_cli.main(["info", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["shards"]) == 2
        for shard in payload["shards"]:
            assert shard["stored_bytes"] > 0
            assert shard["open_ms"] >= 0
            assert shard["n_rows"] == 1024
        assert sum(s["stored_bytes"] for s in payload["shards"]) \
            == payload["stored_bytes"]

    def test_render_cli_trace_file(self, tmp_path, capsys):
        trace = Trace("demo")
        with trace.span("load", column="val"):
            pass
        with trace.span("merge"):
            pass
        path = str(tmp_path / "trace.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace.to_json(), fh)
        assert obs_main.main(["render", path]) == 0
        out = capsys.readouterr().out
        assert "trace: demo" in out
        assert "load" in out and "merge" in out and "#" in out
        assert obs_main.main(["render", "--chrome", path]) == 0
        chrome = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in chrome["traceEvents"]
                if e["ph"] == "X"] == ["load", "merge"]

    def test_render_trace_ascii(self):
        trace = Trace("demo")
        trace.add("a", 0.0, 0.010)
        trace.add("b", 0.010, 0.020)
        text = render_trace(trace.to_json(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("trace: demo")
        assert any("10.000ms" in line for line in lines)

# ===================================================================
# obs top — rates view over /metrics scrapes
# ===================================================================
class TestObsTop:
    def _registries(self):
        """A (before, after) registry pair with serve/exec/cache/par
        activity in the window, including a merged worker series."""
        from repro.obs import metrics as m

        before = MetricsRegistry()
        req = before.counter("repro_serve_requests_total", "r",
                             ("op", "status"))
        req.labels(op="query", status="ok").inc(10)
        hist = before.histogram("repro_serve_request_seconds", "h",
                                buckets=(0.1, 1.0))
        for _ in range(4):
            hist.observe(0.05)
        lookups = before.counter("repro_cache_lookups_total", "c",
                                 ("outcome",))
        lookups.labels(outcome="hit").inc(6)
        lookups.labels(outcome="miss").inc(4)
        after = MetricsRegistry()
        req2 = after.counter("repro_serve_requests_total", "r",
                             ("op", "status"))
        req2.labels(op="query", status="ok").inc(30)
        hist2 = after.histogram("repro_serve_request_seconds", "h",
                                buckets=(0.1, 1.0))
        for _ in range(4):
            hist2.observe(0.05)
        for _ in range(8):
            hist2.observe(0.05)   # 8 fast requests in the window
        lookups2 = after.counter("repro_cache_lookups_total", "c",
                                 ("outcome",))
        lookups2.labels(outcome="hit").inc(12)
        lookups2.labels(outcome="miss").inc(6)
        # worker telemetry merged under proc="w0" — only in `after`
        worker = MetricsRegistry()
        worker.counter("repro_par_worker_granules_total", "g").inc(24)
        worker.counter("repro_cache_lookups_total", "c",
                       ("outcome",)).labels(outcome="miss").inc(24)
        after.merge(m.snapshot_delta(None, worker.snapshot()),
                    proc="w0")
        return before, after

    def test_hist_quantile_interpolates_bucket_deltas(self):
        from repro.obs import top as obs_top

        before = MetricsRegistry()
        h = before.histogram("repro_q_seconds", "q",
                             buckets=(0.1, 1.0))
        after = MetricsRegistry()
        h2 = after.histogram("repro_q_seconds", "q",
                             buckets=(0.1, 1.0))
        for _ in range(50):
            h2.observe(0.05)
        for _ in range(50):
            h2.observe(0.5)
        prev = parse_text(before.render())
        curr = parse_text(after.render())
        p50 = obs_top.hist_quantile(prev, curr, "repro_q_seconds", 0.5)
        p99 = obs_top.hist_quantile(prev, curr, "repro_q_seconds", 0.99)
        assert p50 == pytest.approx(0.1)          # 50th lands on edge
        assert 0.1 < p99 <= 1.0                   # interpolated above
        # no observations in the window → None, not a crash
        assert obs_top.hist_quantile(curr, curr,
                                     "repro_q_seconds", 0.5) is None
        assert obs_top.hist_quantile(prev, curr,
                                     "repro_nope_seconds", 0.5) is None

    def test_compute_view_rates_and_lanes(self):
        from repro.obs import top as obs_top

        before, after = self._registries()
        view = obs_top.compute_view(parse_text(before.render()),
                                    parse_text(after.render()), 10.0)
        assert view["qps"] == pytest.approx(2.0)   # 20 requests / 10s
        # hit rate over the window: +6 hits, +2 local + 24 worker misses
        assert view["cache_hit_rate"] == pytest.approx(6 / 32)
        assert view["request_p50"] is not None
        assert view["lanes"]["w0"]["granules"] == 24
        assert view["lanes"]["w0"]["cache_lookups"] == 24
        assert "driver" not in view["lanes"]

    def test_top_cli_snapshot_mode(self, tmp_path, capsys):
        before, after = self._registries()
        b = str(tmp_path / "before.txt")
        a = str(tmp_path / "after.txt")
        with open(b, "w", encoding="utf-8") as fh:
            fh.write(before.render())
        with open(a, "w", encoding="utf-8") as fh:
            fh.write(after.render())
        assert obs_main.main(["top", "--snapshots", b, a,
                              "--dt", "10"]) == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "hit rate" in out
        assert "w0" in out and "granules +24" in out
