"""Tests for ``repro.obs`` (PR 8): metrics, tracing, and surfaces.

Five suites:

* **metrics conformance** — counters/gauges/histograms (labelled and
  not) round-trip through the Prometheus text exposition, every
  instrument registered anywhere in ``repro`` renders and parses back,
  and concurrent increments from N threads lose no counts;
* the **latency reservoir** — exact quantiles below capacity, bounded
  memory above it, deterministic under a seed;
* **tracing** — a traced 2-granule store query yields spans whose
  granule count, prune counts, and cache attribution exactly match
  ``ExecStats``; Chrome export is valid JSON with monotonic timestamps;
  tracing stays pay-as-you-go (untraced queries carry no trace);
* **serve surfaces** — the ``metrics`` wire op and HTTP ``/metrics``
  endpoint expose populated series, ``/stats`` percentiles read from
  the O(1) reservoir, and the slow-query log captures plan + explain +
  trace as JSONL;
* **scrub/info accounting** — per-shard elapsed time and bytes walked
  in ``scrub --json``, ``info``, and the render CLI.
"""

import json
import os
import threading
import urllib.request

import numpy as np
import pytest

from repro.exec import ExecTimeout, MorselScheduler, Plan, Range
from repro.obs import __main__ as obs_main
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    MetricsRegistry,
    ReservoirQuantiles,
    parse_text,
    set_enabled,
)
from repro.obs.trace import Trace, render_trace
from repro.serve import ServeClient, TableServer
from repro.store import StoreSource, Table, TableWriter
from repro.store import cli as store_cli
from repro.store.scrub import scrub_table


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_table(path: str, n: int = 1024, chunk_rows: int = 512,
               shard_rows: int = 1024) -> None:
    """A store table whose ``val`` column equals the row index."""
    with TableWriter(path, codec="auto", shard_rows=shard_rows,
                     chunk_rows=chunk_rows) as writer:
        writer.append({"val": np.arange(n, dtype=np.int64),
                       "grp": np.arange(n, dtype=np.int64) % 7})


# ===================================================================
# metrics conformance
# ===================================================================
class TestMetricsConformance:
    def test_counter_roundtrip(self, registry):
        c = registry.counter("t_requests_total", "requests",
                             labels=("op",))
        c.labels(op="query").inc(3)
        c.labels(op="ping").inc()
        fams = parse_text(registry.render())
        fam = fams["t_requests_total"]
        assert fam["type"] == "counter"
        assert fam["help"] == "requests"
        by_label = {s[1]["op"]: s[2] for s in fam["samples"]}
        assert by_label == {"query": 3.0, "ping": 1.0}

    def test_gauge_roundtrip(self, registry):
        g = registry.gauge("t_inflight", "in flight")
        g.set(5)
        g.dec(2)
        fams = parse_text(registry.render())
        assert fams["t_inflight"]["type"] == "gauge"
        assert fams["t_inflight"]["samples"] == [("t_inflight", {}, 3.0)]

    def test_histogram_roundtrip_cumulative(self, registry):
        h = registry.histogram("t_seconds", "latency",
                               buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        fams = parse_text(registry.render())
        fam = fams["t_seconds"]
        assert fam["type"] == "histogram"
        buckets = {s[1]["le"]: s[2] for s in fam["samples"]
                   if s[0] == "t_seconds_bucket"}
        # cumulative: 1 under 0.1, 3 under 1.0, all 4 under +Inf
        assert buckets == {"0.1": 1.0, "1": 3.0, "+Inf": 4.0}
        assert [s[2] for s in fam["samples"]
                if s[0] == "t_seconds_count"] == [4.0]
        [total] = [s[2] for s in fam["samples"]
                   if s[0] == "t_seconds_sum"]
        assert total == pytest.approx(6.05)

    def test_label_escaping_roundtrip(self, registry):
        c = registry.counter("t_weird_total", "x", labels=("path",))
        value = 'a"b\\c\nd'
        c.labels(path=value).inc()
        fams = parse_text(registry.render())
        [(_, labels, v)] = fams["t_weird_total"]["samples"]
        assert labels == {"path": value} and v == 1.0

    def test_get_or_create_and_conflicts(self, registry):
        c1 = registry.counter("t_total", "x")
        assert registry.counter("t_total") is c1
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("t_total", labels=("op",))
        with pytest.raises(ValueError, match="bad metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="only go up"):
            c1.inc(-1)
        with pytest.raises(ValueError, match="labels"):
            registry.counter("t_lbl_total", labels=("a",)).labels(b="x")

    def test_every_repro_metric_roundtrips(self):
        # importing the instrumented stack registers every series the
        # process exposes; each must render and parse back faithfully
        import repro.exec.pool  # noqa: F401
        import repro.exec.run  # noqa: F401
        import repro.mutate.compact  # noqa: F401
        import repro.mutate.manifest  # noqa: F401
        import repro.mutate.table  # noqa: F401
        import repro.mutate.wal  # noqa: F401
        import repro.serve.server  # noqa: F401
        import repro.store.cache  # noqa: F401
        import repro.store.table  # noqa: F401

        reg = obs_metrics.default_registry()
        instruments = reg.instruments()
        assert len(instruments) >= 20
        names = {i.name for i in instruments}
        for expected in ("repro_sched_queries_total",
                         "repro_sched_park_wait_seconds",
                         "repro_cache_lookups_total",
                         "repro_exec_queries_total",
                         "repro_exec_cpu_seconds_total",
                         "repro_store_shards_opened_total",
                         "repro_wal_appends_total",
                         "repro_wal_fsync_seconds",
                         "repro_mutate_flush_seconds",
                         "repro_mutate_generations_total",
                         "repro_mutate_compact_passes_total",
                         "repro_serve_requests_total"):
            assert expected in names
        fams = parse_text(reg.render())
        for inst in instruments:
            assert fams[inst.name]["type"] == inst.kind, inst.name
            if inst.kind == "histogram":
                sample_names = {s[0] for s in fams[inst.name]["samples"]}
                if sample_names:  # labelled histograms may have no child
                    assert f"{inst.name}_count" in sample_names
                    assert f"{inst.name}_bucket" in sample_names
            for _, labels, _ in fams[inst.name]["samples"]:
                got = set(labels) - {"le"}
                assert got == set(inst.labelnames), inst.name

    def test_concurrent_increments_lose_no_counts(self, registry):
        c = registry.counter("t_conc_total", "x")
        lc = registry.counter("t_conc_lbl_total", "x", labels=("who",))
        h = registry.histogram("t_conc_seconds", "x", buckets=(0.5,))
        n_threads, per_thread = 8, 5_000

        def hammer(i: int) -> None:
            child = lc.labels(who=str(i % 2))
            for _ in range(per_thread):
                c.inc()
                child.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert c.value == total
        assert sum(child.value
                   for child in lc.children().values()) == total
        _, hist_sum, count = h._default_child().snapshot()
        assert count == total
        assert hist_sum == pytest.approx(0.25 * total)

    def test_set_enabled_kill_switch(self, registry):
        c = registry.counter("t_off_total", "x")
        c.inc()
        set_enabled(False)
        try:
            c.inc(100)
            registry.gauge("t_off_gauge").set(9)
            registry.histogram("t_off_seconds").observe(1.0)
        finally:
            set_enabled(True)
        assert c.value == 1
        assert registry.gauge("t_off_gauge").value == 0
        c.inc()
        assert c.value == 2


class TestReservoir:
    def test_exact_below_capacity(self):
        r = ReservoirQuantiles(size=100)
        for v in range(1, 101):
            r.observe(float(v))
        assert r.count == 100 and len(r) == 100
        assert r.quantile(0.0) == 1.0
        assert r.quantile(1.0) == 100.0
        assert r.quantile(0.5) == pytest.approx(50.5)

    def test_bounded_memory_and_plausible_sample(self):
        r = ReservoirQuantiles(size=256, seed=7)
        for v in range(100_000):
            r.observe(float(v))
        assert len(r) == 256 and r.count == 100_000
        # a uniform sample of 0..1e5: the median lands mid-range
        assert 30_000 < r.quantile(0.5) < 70_000

    def test_deterministic_under_seed(self):
        a, b = (ReservoirQuantiles(size=64, seed=3) for _ in range(2))
        for v in range(10_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.quantiles(0.5, 0.9, 0.99) == b.quantiles(0.5, 0.9, 0.99)

    def test_empty(self):
        r = ReservoirQuantiles(size=8)
        assert r.quantiles(0.5, 0.99) == [0.0, 0.0]
        with pytest.raises(ValueError):
            ReservoirQuantiles(size=0)


# ===================================================================
# tracing
# ===================================================================
class TestTracing:
    def test_traced_two_granule_query_matches_stats(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)  # 1024 rows = exactly 2 granules of 512
        with Table.open(path) as table:
            source = StoreSource(table)
            # warm the cache so the traced run shows real hits
            Plan.scan(("val",)).where(
                Range("val", 0, 1024)).execute(source, threads=1)
            trace = Trace("q", table=path)
            res = Plan.scan(("val",)).where(
                Range("val", 0, 100)).execute(source, threads=1,
                                              trace=trace)
        stats = res.stats
        assert stats.granules_total == 2
        assert stats.granules_pruned == 1  # zone maps drop rows 512+
        granule_spans = [s for s in trace.spans if s.name == "granule"]
        assert len(granule_spans) == stats.granules_total
        assert sum(s.attrs["pruned"] for s in granule_spans) \
            == stats.granules_pruned
        assert sum(s.attrs["cache_hits"] for s in granule_spans) \
            == stats.cache_hits
        assert sum(s.attrs["cache_misses"] for s in granule_spans) \
            == stats.cache_misses
        assert sum(s.attrs["rows"] for s in granule_spans) \
            == stats.rows_scanned
        names = {s.name for s in trace.spans}
        assert {"granule", "filter", "gather", "load", "merge"} <= names
        assert res.trace is trace
        assert "trace:" in res.explain().splitlines()[-1]

    def test_untraced_query_pays_nothing(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        with Table.open(path) as table:
            res = Plan.scan(("val",)).execute(StoreSource(table),
                                              threads=1)
        assert res.trace is None
        assert "trace:" not in res.explain()

    def test_scheduler_spans(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        trace = Trace("q")
        with MorselScheduler(workers=2, name="t-obs") as sched, \
                Table.open(path) as table:
            Plan.scan(("val",)).execute(StoreSource(table),
                                        scheduler=sched, trace=trace)
        names = [s.name for s in trace.spans]
        assert "admit" in names and "granule" in names

    def test_chrome_export_valid_and_monotonic(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path)
        trace = Trace("q")
        with Table.open(path) as table:
            Plan.scan(("val",)).where(Range("val", 0, 600)).execute(
                StoreSource(table), trace=trace)
        events = json.loads(json.dumps(trace.to_chrome()))
        assert len(events) == len(trace.spans) > 0
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        for e in events:
            assert e["ph"] == "X" and e["dur"] >= 0 and e["pid"] == 1
            assert isinstance(e["tid"], int)

    def test_json_roundtrip_and_summary(self):
        trace = Trace("demo", table="x")
        with trace.span("load", column="val") as attrs:
            attrs["rows"] = 7
        trace.add("merge", 0.5, 0.6)
        revived = Trace.from_json(json.loads(
            json.dumps(trace.to_json())))
        assert revived.query == "demo"
        assert [s.name for s in revived.spans] == ["load", "merge"]
        assert revived.spans[0].attrs == {"column": "val", "rows": 7}
        assert "2 spans" in trace.summary()

    def test_concurrent_traces_stay_separate(self, tmp_path):
        # two queries traced through ONE shared scheduler: each trace
        # must hold exactly its own query's granules (the reason the
        # context travels as a parameter, not a thread-local)
        path_a, path_b = str(tmp_path / "a"), str(tmp_path / "b")
        make_table(path_a, n=2048, chunk_rows=256, shard_rows=2048)
        make_table(path_b, n=1024, chunk_rows=256, shard_rows=1024)
        with MorselScheduler(workers=4, name="t-obs2") as sched, \
                Table.open(path_a) as ta, Table.open(path_b) as tb:
            traces = [Trace("a"), Trace("b")]
            results = [None, None]

            def run(i, table):
                results[i] = Plan.scan(("val",)).execute(
                    StoreSource(table), scheduler=sched,
                    trace=traces[i])

            threads = [threading.Thread(target=run, args=(0, ta)),
                       threading.Thread(target=run, args=(1, tb))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(2):
            granules = [s for s in traces[i].spans
                        if s.name == "granule"]
            assert len(granules) == results[i].stats.granules_total
            assert {s.attrs["granule"] for s in granules} \
                == set(range(len(granules)))


# ===================================================================
# serve surfaces
# ===================================================================
@pytest.fixture
def served(tmp_path):
    root = str(tmp_path / "root")
    os.makedirs(root)
    make_table(os.path.join(root, "events"))
    return root


class TestServeSurfaces:
    def test_metrics_wire_op(self, served):
        with TableServer(served, max_inflight=4) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events",
                             Plan.scan(("val",)).where(
                                 Range("val", 0, 50)))
                text = client.metrics()
        fams = parse_text(text)
        assert fams["repro_serve_requests_total"]["type"] == "counter"
        served_ok = [
            v for name, labels, v
            in fams["repro_serve_requests_total"]["samples"]
            if labels.get("op") == "query" and labels.get("status") == "ok"]
        assert served_ok and served_ok[0] >= 1
        # executor + scheduler + cache series all populated
        assert any(v > 0 for _, labels, v
                   in fams["repro_exec_queries_total"]["samples"]
                   if labels.get("status") == "ok")
        assert any(labels.get("sched") == "repro-serve" and v > 0
                   for _, labels, v
                   in fams["repro_sched_granules_total"]["samples"])
        assert any(v > 0 for _, _, v
                   in fams["repro_cache_lookups_total"]["samples"])

    def test_http_metrics_endpoint(self, served):
        with TableServer(served, metrics_port=0) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events", Plan.scan(("val",)))
            mhost, mport = server.metrics_address
            with urllib.request.urlopen(
                    f"http://{mhost}:{mport}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain")
                body = resp.read().decode("utf-8")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{mhost}:{mport}/nope")
        fams = parse_text(body)
        assert "repro_serve_requests_total" in fams
        assert "repro_exec_queries_total" in fams

    def test_stats_reservoir_latency(self, served):
        with TableServer(served) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for _ in range(5):
                    client.query("events", Plan.scan(("val",)).where(
                        Range("val", 0, 10)))
                stats = client.stats()
        latency = stats["latency_ms"]
        assert {"p50", "p90", "p99", "window", "observed"} <= set(latency)
        assert latency["observed"] == 5
        assert latency["window"] == 5
        assert 0 < latency["p50"] <= latency["p99"]

    def test_slow_query_log_records_plan_explain_trace(self, served,
                                                       tmp_path):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=0.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                plan = Plan.scan(("val",)).where(Range("val", 0, 99))
                client.query("events", plan)
                client.explain("events", plan)
        lines = [json.loads(line)
                 for line in open(log, encoding="utf-8")]
        assert len(lines) == 2
        record = lines[0]
        assert record["op"] == "query" and record["table"] == "events"
        assert record["elapsed_ms"] > 0 and record["timed_out"] is False
        assert record["plan"]["nodes"]  # the plan JSON round-trips
        assert "Scan[" in record["explain"]
        span_names = {s["name"] for s in record["trace"]["spans"]}
        assert "granule" in span_names and "admit" in span_names
        # the render CLI understands slow-query JSONL directly
        assert obs_main.main(["render", log]) == 0

    def test_slow_query_threshold_filters(self, served, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=60_000.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                client.query("events", Plan.scan(("val",)))
        assert not os.path.exists(log)

    def test_timeout_lands_in_slow_log(self, served, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        with TableServer(served, slow_query_ms=0.0,
                         slow_query_log=log) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                with pytest.raises(ExecTimeout):
                    client.query("events", Plan.scan(("val",)),
                                 timeout_s=1e-9)
        records = [json.loads(line)
                   for line in open(log, encoding="utf-8")]
        assert any(r["timed_out"] for r in records)


# ===================================================================
# scrub / info accounting + render CLI
# ===================================================================
class TestScrubInfoAccounting:
    def test_scrub_reports_time_and_bytes(self, tmp_path):
        path = str(tmp_path / "t")
        make_table(path, n=2048, shard_rows=1024)
        report = scrub_table(path)
        assert report.ok and len(report.shards) == 2
        for shard in report.shards:
            assert shard.bytes_walked > 0
            assert shard.elapsed_s > 0
        assert report.bytes_walked == sum(s.bytes_walked
                                          for s in report.shards)
        assert "walked:" in report.summary()

    def test_scrub_json_cli(self, tmp_path, capsys):
        path = str(tmp_path / "t")
        make_table(path)
        assert store_cli.main(["scrub", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["bytes_walked"] > 0 and payload["elapsed_s"] > 0
        for shard in payload["shards"]:
            assert shard["bytes_walked"] > 0
            assert shard["elapsed_s"] > 0

    def test_info_reports_per_shard(self, tmp_path, capsys):
        path = str(tmp_path / "t")
        make_table(path, n=2048, shard_rows=1024)
        assert store_cli.main(["info", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["shards"]) == 2
        for shard in payload["shards"]:
            assert shard["stored_bytes"] > 0
            assert shard["open_ms"] >= 0
            assert shard["n_rows"] == 1024
        assert sum(s["stored_bytes"] for s in payload["shards"]) \
            == payload["stored_bytes"]

    def test_render_cli_trace_file(self, tmp_path, capsys):
        trace = Trace("demo")
        with trace.span("load", column="val"):
            pass
        with trace.span("merge"):
            pass
        path = str(tmp_path / "trace.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace.to_json(), fh)
        assert obs_main.main(["render", path]) == 0
        out = capsys.readouterr().out
        assert "trace: demo" in out
        assert "load" in out and "merge" in out and "#" in out
        assert obs_main.main(["render", "--chrome", path]) == 0
        chrome = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in chrome["traceEvents"]] \
            == ["load", "merge"]

    def test_render_trace_ascii(self):
        trace = Trace("demo")
        trace.add("a", 0.0, 0.010)
        trace.add("b", 0.010, 0.020)
        text = render_trace(trace.to_json(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("trace: demo")
        assert any("10.000ms" in line for line in lines)
