"""Tests for the Encoder/Decoder and storage format (paper §3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    CompressedArray,
    LecoEncoder,
    accumulate_predictions,
    encode_partition,
)
from repro.core.regressors import LinearRegressor, get_regressor

int_arrays = st.lists(st.integers(-(1 << 50), 1 << 50), min_size=1,
                      max_size=400).map(
                          lambda v: np.array(v, dtype=np.int64))


def roundtrip_checks(values: np.ndarray, arr: CompressedArray) -> None:
    """The full lossless contract every encoded array must satisfy."""
    decoded = arr.decode_all()
    assert np.array_equal(decoded, values)
    assert np.array_equal(arr.decode_all_serial(), values)
    clone = CompressedArray.from_bytes(arr.to_bytes())
    assert np.array_equal(clone.decode_all(), values)
    # random access must agree at a sample of positions
    rng = np.random.default_rng(0)
    for pos in rng.integers(0, len(values), min(len(values), 40)):
        assert arr.get(int(pos)) == values[pos]
        assert clone.get(int(pos)) == values[pos]


class TestRoundTrip:
    @given(int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_fixed_partitions_lossless(self, values):
        arr = LecoEncoder("linear", partitioner=32).encode(values)
        roundtrip_checks(values, arr)

    @given(int_arrays)
    @settings(max_examples=25, deadline=None)
    def test_variable_partitions_lossless(self, values):
        arr = LecoEncoder("linear", partitioner="variable").encode(values)
        roundtrip_checks(values, arr)

    @pytest.mark.parametrize("regressor", ["constant", "linear", "poly2",
                                           "poly3", "logarithm"])
    def test_all_regressors_lossless(self, regressor):
        rng = np.random.default_rng(1)
        values = np.cumsum(rng.integers(0, 100, 5000)).astype(np.int64)
        arr = LecoEncoder(regressor, partitioner=256).encode(values)
        roundtrip_checks(values, arr)

    def test_extreme_values(self):
        values = np.array([np.iinfo(np.int64).min // 2, -1, 0, 1,
                           np.iinfo(np.int64).max // 2], dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=8).encode(values)
        roundtrip_checks(values, arr)

    def test_single_value(self):
        values = np.array([-42], dtype=np.int64)
        arr = LecoEncoder("linear", partitioner="variable").encode(values)
        roundtrip_checks(values, arr)

    def test_constant_sequence_is_tiny(self):
        values = np.full(10_000, 123456, dtype=np.int64)
        arr = LecoEncoder("linear", partitioner="fixed").encode(values)
        roundtrip_checks(values, arr)
        assert arr.compressed_size_bytes() < values.nbytes / 100

    def test_float_input_rejected(self):
        with pytest.raises(TypeError):
            LecoEncoder().encode(np.array([1.5, 2.5]))

    def test_unknown_partitioner_spec(self):
        with pytest.raises(ValueError):
            LecoEncoder(partitioner="bogus")


class TestRandomAccess:
    def test_get_matches_decode_everywhere(self):
        rng = np.random.default_rng(2)
        values = np.cumsum(rng.integers(-5, 50, 3000)).astype(np.int64)
        for part in (64, "variable"):
            arr = LecoEncoder("linear", partitioner=part).encode(values)
            decoded = arr.decode_all()
            for pos in range(0, 3000, 37):
                assert arr.get(pos) == decoded[pos]

    def test_negative_index_wraps(self):
        values = np.arange(100, dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=16).encode(values)
        assert arr.get(-1) == 99

    def test_out_of_range_raises(self):
        arr = LecoEncoder("linear", partitioner=16).encode(
            np.arange(10, dtype=np.int64))
        with pytest.raises(IndexError):
            arr.get(10)

    @given(int_arrays, st.data())
    @settings(max_examples=25, deadline=None)
    def test_decode_range_matches_slice(self, values, data):
        arr = LecoEncoder("linear", partitioner=32).encode(values)
        lo = data.draw(st.integers(0, len(values)))
        hi = data.draw(st.integers(lo, len(values)))
        assert np.array_equal(arr.decode_range(lo, hi), values[lo:hi])

    def test_decode_range_validation(self):
        arr = LecoEncoder("linear", partitioner=16).encode(
            np.arange(10, dtype=np.int64))
        with pytest.raises(IndexError):
            arr.decode_range(5, 11)


class TestTake:
    @given(int_arrays, st.data())
    @settings(max_examples=25, deadline=None)
    def test_take_matches_fancy_indexing(self, values, data):
        arr = LecoEncoder("linear", partitioner=32).encode(values)
        k = data.draw(st.integers(0, min(len(values), 50)))
        positions = data.draw(
            st.lists(st.integers(0, len(values) - 1), min_size=k,
                     max_size=k))
        positions = np.array(positions, dtype=np.int64)
        assert np.array_equal(arr.take(positions), values[positions])

    def test_take_empty(self):
        arr = LecoEncoder("linear", partitioner=16).encode(
            np.arange(10, dtype=np.int64))
        assert arr.take(np.array([], dtype=np.int64)).size == 0

    def test_take_out_of_range(self):
        arr = LecoEncoder("linear", partitioner=16).encode(
            np.arange(10, dtype=np.int64))
        with pytest.raises(IndexError):
            arr.take(np.array([11]))

    def test_take_on_variable_partitions(self):
        rng = np.random.default_rng(3)
        values = np.cumsum(rng.integers(0, 9, 2000)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner="variable").encode(values)
        positions = rng.integers(0, 2000, 300)
        assert np.array_equal(arr.take(positions), values[positions])


class TestSerialDecodeOptimisation:
    def test_corrections_make_serial_exact(self):
        """The §3.3 accumulation must be bit-identical after corrections."""
        rng = np.random.default_rng(4)
        # slopes with non-terminating binary expansions maximise drift
        values = np.cumsum(rng.integers(0, 7, 50_000)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner=10_000).encode(values)
        assert np.array_equal(arr.decode_all_serial(), values)

    def test_accumulate_predictions_is_sequential(self):
        acc = accumulate_predictions(1.0, 0.1, 5)
        expected = [1.0]
        for _ in range(4):
            expected.append(expected[-1] + 0.1)
        assert np.allclose(acc, expected, rtol=0, atol=0)

    def test_corrections_absent_when_disabled(self):
        values = np.arange(1000, dtype=np.int64) * 3
        arr = LecoEncoder("linear", partitioner=100,
                          build_corrections=False).encode(values)
        assert all(not p.corrections for p in arr.partitions)


class TestPartitionValueBounds:
    @given(int_arrays)
    @settings(max_examples=30, deadline=None)
    def test_bounds_are_sound(self, values):
        """Every true value must lie within its partition's claimed bounds."""
        arr = LecoEncoder("linear", partitioner=32).encode(values)
        bounds = arr.partition_value_bounds()
        for j, part in enumerate(arr.partitions):
            seg = values[part.start: part.end]
            assert bounds[j, 0] <= seg.min()
            assert bounds[j, 1] >= seg.max()

    def test_bounds_are_reasonably_tight_on_linear_data(self):
        values = (11 * np.arange(10_000)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner=1000).encode(values)
        bounds = arr.partition_value_bounds()
        for j, part in enumerate(arr.partitions):
            seg = values[part.start: part.end]
            span = int(seg.max() - seg.min()) + 1
            claimed = int(bounds[j, 1] - bounds[j, 0]) + 1
            assert claimed <= 2 * span + 16


class TestSerialisation:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            CompressedArray.from_bytes(b"XXXX" + bytes(20))

    def test_bad_version_rejected(self):
        arr = LecoEncoder("linear", partitioner=16).encode(
            np.arange(10, dtype=np.int64))
        blob = bytearray(arr.to_bytes())
        blob[4] = 99
        with pytest.raises(ValueError):
            CompressedArray.from_bytes(bytes(blob))

    def test_serialised_size_is_stable(self):
        values = np.arange(1000, dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=100).encode(values)
        assert arr.compressed_size_bytes() == len(arr.to_bytes())
        assert arr.compressed_size_bytes() == arr.compressed_size_bytes()

    def test_variable_partition_serialisation(self):
        rng = np.random.default_rng(5)
        values = np.cumsum(rng.integers(0, 20, 3000)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner="variable").encode(values)
        clone = CompressedArray.from_bytes(arr.to_bytes())
        assert clone.fixed_size is None
        assert len(clone.partitions) == len(arr.partitions)
        assert np.array_equal(clone.decode_all(), values)

    def test_mixed_regressor_serialisation(self):
        values = np.concatenate([
            (np.arange(500) ** 2),
            7 * np.arange(500) + 10 ** 6,
        ]).astype(np.int64)
        parts = [
            encode_partition(values[:500], 0, get_regressor("poly2")),
            encode_partition(values[500:], 500, get_regressor("linear")),
        ]
        arr = CompressedArray(1000, parts, None, "linear")
        clone = CompressedArray.from_bytes(arr.to_bytes())
        assert {p.regressor_name for p in clone.partitions} == {
            "poly2", "linear"}
        assert np.array_equal(clone.decode_all(), values)


class TestModelSizeAccounting:
    def test_model_share_counts_parameters(self):
        values = np.arange(1000, dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=100).encode(values)
        assert arr.model_size_bytes() == len(arr.partitions) * 16

    def test_compression_ratio_helper(self):
        values = np.arange(1000, dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=100).encode(values)
        assert arr.compression_ratio(8000) == pytest.approx(
            arr.compressed_size_bytes() / 8000)
