"""Tests for the persistent sharded columnar store (``repro.store``)."""

import json
import os

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import codecs
from repro.engine import ParquetLikeFile
from repro.store import (
    ChunkCache,
    Table,
    TableWriter,
    write_table,
)
from repro.store import format as store_format
from repro.store.cli import main as cli_main

INT_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_integers]


def make_values(codec: str, n: int, seed: int = 7) -> np.ndarray:
    """Integer data honouring the codec's input capabilities."""
    rng = np.random.default_rng(seed)
    values = np.concatenate([
        np.cumsum(rng.integers(0, 50, n // 2)),
        rng.integers(-(1 << 33), 1 << 33, n - n // 2),
    ]).astype(np.int64)
    if codecs.info(codec).requires_sorted:
        values = np.sort(np.abs(values))
    return values


def sensor_table(tmp_path, n=6000, shard_rows=1500, chunk_rows=250,
                 codec="auto", seed=3):
    from repro.datasets import sensor_fixture

    columns = sensor_fixture(n, seed=seed)
    path = str(tmp_path / "table")
    write_table(path, columns, codec=codec, shard_rows=shard_rows,
                chunk_rows=chunk_rows)
    return path, columns


class TestFormat:
    def _footer(self):
        chunks = (
            store_format.ChunkMeta("ts", 0, 100, 5, 42, "leco",
                                   -7, 10 ** 13, "model"),
            store_format.ChunkMeta("ts", 100, 60, 47, 30, "plain",
                                   0, 5, "computed"),
        )
        return store_format.ShardFooter(row_start=400, n_rows=160,
                                        chunks=chunks)

    def test_footer_roundtrip(self):
        footer = self._footer()
        blob = (store_format.SHARD_MAGIC + bytes([store_format.VERSION])
                + b"\x00" * 77 + store_format.pack_footer(footer))
        assert store_format.unpack_footer(blob) == footer

    def test_foreign_magic_rejected(self):
        with pytest.raises(ValueError, match="not a repro store shard"):
            store_format.unpack_footer(b"PAR1" + b"\x00" * 64)

    def test_truncated_trailer_rejected(self):
        footer = self._footer()
        blob = (store_format.SHARD_MAGIC + bytes([store_format.VERSION])
                + store_format.pack_footer(footer))
        with pytest.raises(ValueError):
            store_format.unpack_footer(blob[:-3])

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a store table"):
            Table.open(str(tmp_path))


class TestModelBounds:
    def test_leco_bounds_cover_values(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.integers(-30, 60, 5000)).astype(np.int64)
        seq = codecs.get("leco", partitioner=256).encode(values)
        lo, hi = seq.model_bounds()
        assert lo <= int(values.min())
        assert hi >= int(values.max())

    def test_base_sequences_have_no_bounds(self):
        values = np.arange(100, dtype=np.int64)
        assert codecs.get("rans").encode(values).model_bounds() is None
        assert codecs.get("plain").encode(values).model_bounds() is None

    def test_capability_flag_matches_behaviour(self):
        """`supports_model_bounds` is the explicit contract the writer
        and the exec planner read: flagged codecs deliver bounds, and
        bounds are never consulted for unflagged ones."""
        values = np.cumsum(np.ones(500, dtype=np.int64))
        for name in INT_CODECS:
            info = codecs.info(name)
            seq = codecs.get(name).encode(values)
            if info.supports_model_bounds:
                lo, hi = seq.model_bounds()
                assert lo <= 1 and hi >= 500, name

    def test_store_zone_map_sources(self, tmp_path):
        path = str(tmp_path / "t")
        values = np.cumsum(np.ones(1000, dtype=np.int64))
        write_table(path, {"a": values, "b": values},
                    codec={"a": "leco", "b": "rans"}, chunk_rows=200)
        with Table.open(path) as table:
            chunks = table.shards[0].footer.chunks
            sources = {c.column: c.bounds for c in chunks}
            assert sources == {"a": "model", "b": "computed"}
            for c in chunks:
                seg = values[c.row_start: c.row_start + c.n_rows]
                assert c.zmin <= int(seg.min())
                assert c.zmax >= int(seg.max())


class TestWriter:
    def test_streaming_append_equals_one_shot(self, tmp_path):
        rng = np.random.default_rng(5)
        cols = {"a": rng.integers(0, 1000, 3000).astype(np.int64),
                "b": np.cumsum(rng.integers(0, 9, 3000)).astype(np.int64)}
        one = str(tmp_path / "one")
        write_table(one, cols, shard_rows=700, chunk_rows=128)
        streamed = str(tmp_path / "streamed")
        with TableWriter(streamed, shard_rows=700,
                         chunk_rows=128) as writer:
            for start in range(0, 3000, 450):
                writer.append({k: v[start: start + 450]
                               for k, v in cols.items()})
        with Table.open(one) as t1, Table.open(streamed) as t2:
            for name in cols:
                assert np.array_equal(t1.read_column(name),
                                      t2.read_column(name))
            assert len(t1.shards) == len(t2.shards)

    def test_schema_and_dtype_validation(self, tmp_path):
        writer = TableWriter(str(tmp_path / "t"))
        writer.append({"a": np.arange(10)})
        with pytest.raises(ValueError, match="do not match the schema"):
            writer.append({"b": np.arange(10)})
        with pytest.raises(TypeError, match="integer input required"):
            writer.append({"a": np.linspace(0, 1, 10)})
        with pytest.raises(ValueError, match="length mismatch"):
            TableWriter(str(tmp_path / "u")).append(
                {"a": np.arange(10), "b": np.arange(9)})

    def test_overwrite_protection_and_cleanup(self, tmp_path):
        path = str(tmp_path / "t")
        write_table(path, {"a": np.arange(5000)}, shard_rows=1000)
        with pytest.raises(ValueError, match="already holds"):
            TableWriter(path)
        write_table(path, {"a": np.arange(800)}, shard_rows=1000,
                    overwrite=True)
        shard_files = [f for f in os.listdir(path) if f.endswith(".rps")]
        assert len(shard_files) == 1  # stale shards removed
        with Table.open(path) as table:
            assert table.n_rows == 800

    def test_rejected_batch_leaves_writer_untouched(self, tmp_path):
        writer = TableWriter(str(tmp_path / "t"))
        writer.append({"a": np.arange(10), "b": np.arange(100, 110)})
        with pytest.raises(ValueError, match="length mismatch"):
            writer.append({"a": np.arange(10), "b": np.arange(9)})
        writer.append({"a": np.arange(10, 20), "b": np.arange(200, 210)})
        writer.close()
        with Table.open(str(tmp_path / "t")) as table:
            assert np.array_equal(table.read_column("a"), np.arange(20))
            assert np.array_equal(
                table.read_column("b"),
                np.concatenate([np.arange(100, 110), np.arange(200, 210)]))

    def test_failed_overwrite_leaves_old_table_intact(self, tmp_path):
        path = str(tmp_path / "t")
        write_table(path, {"a": np.arange(2000)}, shard_rows=500)
        with pytest.raises(RuntimeError):
            with TableWriter(path, overwrite=True, shard_rows=500) as w:
                w.append({"a": np.arange(700)})  # flushes one shard
                raise RuntimeError("ingest source died")
        # the previous table (manifest + shards) still opens and serves
        with Table.open(path) as table:
            assert table.n_rows == 2000
            assert np.array_equal(table.read_column("a"), np.arange(2000))

    def test_uint64_beyond_int64_rejected(self, tmp_path):
        big = np.array([2 ** 63 + 5, 1, 2], dtype=np.uint64)
        with pytest.raises(ValueError, match="exceeds the int64 range"):
            write_table(str(tmp_path / "t"), {"a": big}, codec="plain")
        small = np.array([1, 2, 3], dtype=np.uint32)
        write_table(str(tmp_path / "u"), {"a": small}, codec="plain")
        with Table.open(str(tmp_path / "u")) as table:
            assert np.array_equal(table.read_column("a"), [1, 2, 3])

    def test_per_column_codec_specs_stay_distinct(self, tmp_path):
        from repro.codecs import CodecSpec

        values = np.cumsum(np.ones(1000, dtype=np.int64))
        writer = TableWriter(str(tmp_path / "t"), codec={
            "a": CodecSpec(codec="leco", mode="fix"),
            "b": CodecSpec(codec="leco", mode="var"),
        }, chunk_rows=250)
        writer.append({"a": values, "b": values})
        writer.close()
        # both specs were constructed (not the first one reused for both)
        spec_keys = [k for k in writer._codec_cache if
                     isinstance(k, CodecSpec)]
        assert {k.mode for k in spec_keys} == {"fix", "var"}

    def test_schema_validated_at_construction(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate column name"):
            TableWriter(str(tmp_path / "a"), schema=["x", "y", "x"])
        with pytest.raises(ValueError, match="zero-column schema"):
            TableWriter(str(tmp_path / "b"), schema=[])
        with pytest.raises(ValueError, match="no codec configured"):
            TableWriter(str(tmp_path / "c"), schema=["x", "y"],
                        codec={"x": "leco"})
        # a valid declared schema is enforced against the first batch
        writer = TableWriter(str(tmp_path / "d"), schema=["x", "y"])
        with pytest.raises(ValueError, match="do not match the schema"):
            writer.append({"x": np.arange(5)})
        writer.append({"x": np.arange(5), "y": np.arange(5)})
        writer.close()
        with Table.open(str(tmp_path / "d")) as table:
            assert table.column_names == ("x", "y")

    def test_close_without_rows_rejected(self, tmp_path):
        writer = TableWriter(str(tmp_path / "t"), schema=["x"])
        with pytest.raises(ValueError, match="ingested no rows"):
            writer.close()

    def test_unknown_scan_columns_raise_keyerror(self, tmp_path):
        path, _ = sensor_table(tmp_path, n=1000, shard_rows=500)
        with Table.open(path) as table:
            with pytest.raises(KeyError, match="available: ts, sensor_id"):
                table.scan(columns=["nope"])
            with pytest.raises(KeyError, match="unknown predicate column"):
                table.scan(where=("bogus", 0, 1))

    def test_shard_and_chunk_geometry(self, tmp_path):
        path = str(tmp_path / "t")
        write_table(path, {"a": np.arange(2500)}, shard_rows=1000,
                    chunk_rows=300)
        with Table.open(path) as table:
            assert [s.footer.n_rows for s in table.shards] == \
                [1000, 1000, 500]
            assert [s.footer.row_start for s in table.shards] == \
                [0, 1000, 2000]
            tail = table.shards[-1].by_column["a"]
            assert [c.n_rows for c in tail] == [300, 200]


class TestScanCorrectness:
    """Pruned pushdown scans must equal naive decode-all-then-filter."""

    @pytest.mark.parametrize("codec", INT_CODECS)
    def test_pruned_scan_matches_naive(self, codec, tmp_path):
        values = make_values(codec, 1200)
        rid = np.arange(len(values), dtype=np.int64)
        path = str(tmp_path / "t")
        write_table(path, {"v": values, "rid": rid}, codec=codec,
                    shard_rows=400, chunk_rows=100)
        with Table.open(path) as table:
            assert np.array_equal(table.read_column("v"), values)
            span = int(values.max() - values.min())
            for lo_q, hi_q in [(0.3, 0.35), (0.0, 1.0), (0.9, 0.91)]:
                lo = int(values.min()) + int(span * lo_q)
                hi = int(values.min()) + int(span * hi_q)
                res = table.scan(columns=["rid", "v"], where=("v", lo, hi))
                mask = (values >= lo) & (values < hi)
                assert np.array_equal(res.row_ids, np.flatnonzero(mask))
                assert np.array_equal(res.columns["v"], values[mask])
                assert np.array_equal(res.columns["rid"], rid[mask])

    def test_empty_result_and_all_chunks_pruned(self, tmp_path):
        values = np.arange(1000, 2000, dtype=np.int64)
        path = str(tmp_path / "t")
        write_table(path, {"v": values}, codec="plain", shard_rows=250,
                    chunk_rows=50)
        with Table.open(path) as table:
            res = table.scan(where=("v", 10, 20))  # below the domain
            assert res.n_rows == 0
            assert res.columns["v"].size == 0
            stats = res.stats
            # plain zone maps are exact: every chunk pruned, zero bytes
            assert stats.chunks_pruned == stats.chunks_total == 20
            assert stats.bytes_read == 0
            # empty range inside the domain
            res = table.scan(where=("v", 1500, 1500))
            assert res.n_rows == 0

    def test_projected_predicate_column_loads_chunks_once(self, tmp_path):
        values = np.arange(1000, dtype=np.int64)
        path = str(tmp_path / "t")
        write_table(path, {"v": values}, codec="plain", shard_rows=500,
                    chunk_rows=100)
        with Table.open(path, cache_bytes=0) as table:
            res = table.scan(columns=["v"], where=("v", 150, 350))
            assert np.array_equal(res.columns["v"], np.arange(150, 350))
            surviving = [
                c for s in table.shards for c in s.by_column["v"]
                if not (c.zmax < 150 or c.zmin >= 350)]
            # filter + gather reuse one load per surviving chunk
            assert res.stats.chunks_scanned == len(surviving)
            assert res.stats.bytes_read == sum(c.nbytes for c in surviving)

    def test_unpruned_scan_same_answer_more_bytes(self, tmp_path):
        path, columns = sensor_table(tmp_path)
        ts = columns["ts"]
        lo, hi = int(ts[2000]), int(ts[2080])
        with Table.open(path, cache_bytes=0) as table:
            pruned = table.scan(columns=["reading"], where=("ts", lo, hi))
            unpruned = table.scan(columns=["reading"], where=("ts", lo, hi),
                                  prune=False)
            assert np.array_equal(pruned.columns["reading"],
                                  unpruned.columns["reading"])
            assert pruned.stats.chunks_pruned > 0
            assert unpruned.stats.chunks_pruned == 0
            assert pruned.stats.bytes_read < unpruned.stats.bytes_read


if HAVE_HYPOTHESIS:
    class TestScanProperty:
        @pytest.mark.parametrize("codec", INT_CODECS)
        @given(data=st.data())
        @settings(max_examples=8, deadline=None)
        def test_pruned_scan_matches_naive_property(self, codec,
                                                    tmp_path_factory, data):
            raw = data.draw(st.lists(
                st.integers(-(1 << 40), 1 << 40), min_size=1, max_size=300))
            values = np.array(raw, dtype=np.int64)
            if codecs.info(codec).requires_sorted:
                values = np.sort(np.abs(values))
            path = str(tmp_path_factory.mktemp("prop") / "t")
            write_table(path, {"v": values}, codec=codec, shard_rows=64,
                        chunk_rows=16)
            lo = data.draw(st.integers(-(1 << 41), 1 << 41))
            hi = data.draw(st.integers(-(1 << 41), 1 << 41))
            if lo > hi:
                lo, hi = hi, lo
            with Table.open(path) as table:
                res = table.scan(where=("v", lo, hi))
                mask = (values >= lo) & (values < hi)
                assert np.array_equal(res.row_ids, np.flatnonzero(mask))
                assert np.array_equal(res.columns["v"], values[mask])


class TestReopen:
    def test_reopen_round_trips_bytes_identically(self, tmp_path):
        path, columns = sensor_table(tmp_path)
        first = Table.open(path)
        chunk_images = [
            first.chunk_bytes(i, meta)
            for i, shard in enumerate(first.shards)
            for meta in shard.footer.chunks
        ]
        answer = first.scan(where=("ts", 100, 5000))
        first.close()

        second = Table.open(path)  # a brand-new process-state instance
        reread = [
            second.chunk_bytes(i, meta)
            for i, shard in enumerate(second.shards)
            for meta in shard.footer.chunks
        ]
        assert chunk_images == reread
        for blob in reread:  # every chunk revives through the envelope
            assert blob[:4] == codecs.MAGIC
        res = second.scan(where=("ts", 100, 5000))
        assert np.array_equal(res.row_ids, answer.row_ids)
        for name in res.columns:
            assert np.array_equal(res.columns[name], answer.columns[name])
        for name, col in columns.items():
            assert np.array_equal(second.read_column(name), col)
        second.close()


class TestParallelAndCache:
    def test_thread_counts_agree(self, tmp_path):
        path, columns = sensor_table(tmp_path, n=8000, shard_rows=1000)
        ts = columns["ts"]
        lo, hi = int(ts[1000]), int(ts[4000])
        with Table.open(path) as table:
            results = [table.scan(where=("ts", lo, hi), threads=k)
                       for k in (1, 2, 4, None)]
            for res in results[1:]:
                assert np.array_equal(res.row_ids, results[0].row_ids)
                for name in res.columns:
                    assert np.array_equal(res.columns[name],
                                          results[0].columns[name])

    def test_warm_scan_reads_zero_bytes(self, tmp_path):
        path, _ = sensor_table(tmp_path)
        with Table.open(path) as table:
            cold = table.scan()
            assert cold.stats.bytes_read == cold.stats.bytes_scanned > 0
            warm = table.scan()
            assert warm.stats.bytes_read == 0
            assert warm.stats.cache_hits == warm.stats.chunks_scanned > 0
            for name in cold.columns:
                assert np.array_equal(warm.columns[name],
                                      cold.columns[name])

    def test_tiny_cache_still_correct_and_bounded(self, tmp_path):
        path, columns = sensor_table(tmp_path)
        with Table.open(path, cache_bytes=4096) as table:
            res = table.scan()
            for name, col in columns.items():
                assert np.array_equal(res.columns[name], col)
            assert table.cache.used_bytes <= 4096 + max(
                c.nbytes for s in table.shards for c in s.footer.chunks)

    def test_cache_disabled(self, tmp_path):
        path, _ = sensor_table(tmp_path)
        with Table.open(path, cache_bytes=0) as table:
            assert table.cache is None
            first = table.scan()
            second = table.scan()
            assert first.stats.bytes_read == second.stats.bytes_read > 0

    def test_lru_eviction_order(self):
        cache = ChunkCache(capacity_bytes=100)
        cache.get_or_load("a", lambda: 1, 40)
        cache.get_or_load("b", lambda: 2, 40)
        cache.get_or_load("a", lambda: None, 40)    # refresh a
        _, _, evicted = cache.get_or_load("c", lambda: 3, 40)  # evicts b
        assert evicted == 1
        value, hit, _ = cache.get_or_load("b", lambda: 9, 40)
        assert (value, hit) == (9, False)
        assert cache.get_or_load("a", lambda: None, 40)[1] in (True, False)
        assert cache.evictions >= 1
        assert cache.stats()["evictions"] == cache.evictions


class TestBridge:
    def test_parquet_roundtrip_through_store(self, tmp_path):
        rng = np.random.default_rng(8)
        table = {"ts": np.cumsum(rng.integers(1, 9, 5000)).astype(np.int64),
                 "val": rng.integers(0, 10 ** 6, 5000).astype(np.int64)}
        file = ParquetLikeFile.write(table, "leco", row_group_size=2000,
                                     partition_size=250)
        path = str(tmp_path / "bridge")
        file.to_store(path, chunk_rows=500)
        back = ParquetLikeFile.from_store(path, "leco",
                                          row_group_size=2000,
                                          partition_size=250)
        assert back.n_rows == file.n_rows
        for g1, g2 in zip(file.row_groups, back.row_groups):
            for name in g1.chunks:
                assert np.array_equal(g1.chunks[name].column.decode_all(),
                                      g2.chunks[name].column.decode_all())


class TestCLI:
    def test_ingest_info_scan(self, tmp_path, capsys):
        out = str(tmp_path / "cli_table")
        assert cli_main(["ingest", "--out", out, "--fixture", "sensors",
                         "--rows", "4000", "--shard-rows", "1000",
                         "--chunk-rows", "200"]) == 0
        assert "ingested 4000 rows" in capsys.readouterr().out
        assert cli_main(["info", out, "--chunks"]) == 0
        text = capsys.readouterr().out
        assert '"n_rows": 4000' in text and "zone [" in text
        assert cli_main(["scan", out, "--columns", "sensor_id,reading",
                         "--where", "ts:1000:2000", "--limit", "2"]) == 0
        text = capsys.readouterr().out
        assert "rows in" in text and "pruned" in text

    def test_scan_rejects_bad_where(self):
        with pytest.raises(SystemExit):
            cli_main(["scan", "x", "--where", "notarange"])

    def test_scan_unknown_column_one_line_error(self, tmp_path, capsys):
        out = str(tmp_path / "cli_err")
        cli_main(["ingest", "--out", out, "--rows", "1000",
                  "--shard-rows", "500", "--chunk-rows", "100"])
        capsys.readouterr()
        assert cli_main(["scan", out, "--columns", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one clean line, no traceback
        assert "unknown column" in err and "available: ts" in err
        assert cli_main(["scan", out, "--where", "bogus:0:9"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "available: ts" in err

    def test_scan_explain_flag(self, tmp_path, capsys):
        out = str(tmp_path / "cli_explain")
        cli_main(["ingest", "--out", out, "--rows", "4000",
                  "--shard-rows", "1000", "--chunk-rows", "200"])
        capsys.readouterr()
        assert cli_main(["scan", out, "--columns", "reading",
                         "--where", "ts:100:900", "--explain"]) == 0
        text = capsys.readouterr().out
        assert "Filter[pushed:" in text and "Scan[store:" in text
        assert "granules:" in text


class TestEndToEnd:
    """The acceptance path: ingest -> reopen -> pruned selective scan."""

    def test_ingest_reopen_selective_scan(self, tmp_path):
        from repro.datasets import sensor_fixture

        columns = sensor_fixture(20_000, seed=11)
        path = str(tmp_path / "e2e")
        with TableWriter(path, codec="auto", shard_rows=4096,
                         chunk_rows=512) as writer:
            for start in range(0, 20_000, 3000):  # streaming ingest
                writer.append({k: v[start: start + 3000]
                               for k, v in columns.items()})

        # a brand-new Table instance from the same directory
        with Table.open(path) as table:
            ts = columns["ts"]
            lo, hi = int(ts[9000]), int(ts[9100])  # ~0.5% selectivity
            res = table.scan(columns=["sensor_id", "reading"],
                             where=("ts", lo, hi))
            mask = (ts >= lo) & (ts < hi)
            assert np.array_equal(res.row_ids, np.flatnonzero(mask))
            assert np.array_equal(res.columns["sensor_id"],
                                  columns["sensor_id"][mask])
            assert np.array_equal(res.columns["reading"],
                                  columns["reading"][mask])
            # the selective scan must touch strictly fewer stored bytes
            # than a full scan of the same projection
            table.cache.clear()
            full = table.scan(columns=["sensor_id", "reading"])
            assert 0 < res.stats.bytes_read < full.stats.bytes_read

    def test_bench_store_scan_quick(self, tmp_path):
        import importlib.util
        import sys

        bench_path = os.path.join(os.path.dirname(__file__), "..",
                                  "benchmarks", "bench_store_scan.py")
        spec = importlib.util.spec_from_file_location("bench_store_scan",
                                                      bench_path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["bench_store_scan"] = module
        spec.loader.exec_module(module)
        json_path = str(tmp_path / "BENCH_store.json")
        module.main(["--quick", "--json", json_path,
                     "--dir", str(tmp_path / "bench_table")])
        with open(json_path) as fh:
            payload = json.load(fh)
        checks = payload["checks"]
        assert checks["pruned_matches_naive"] is True
        assert checks["pruned_reads_fewer_bytes"] is True
        assert checks["warm_reads_zero_bytes"] is True
        assert payload["scans"]["selective_pruned"]["bytes_read"] < \
            payload["scans"]["full_cold"]["bytes_read"]
        # pruning must win on wall clock at this selectivity
        assert checks["pruned_faster_than_unpruned"] is True


class TestForwardCompat:
    """Readers must reject newer format versions with a clear error
    naming both versions, never misparse (satellite, PR 5)."""

    def test_newer_shard_version_named_in_error(self):
        blob = bytearray(store_format.SHARD_MAGIC)
        blob.append(store_format.VERSION + 1)
        blob += b"\x00" * 64
        blob += store_format.pack_footer(store_format.ShardFooter(0, 0, ()))
        with pytest.raises(ValueError, match=(
                rf"version {store_format.VERSION + 1} is newer than the "
                rf"supported version {store_format.VERSION}")):
            store_format.unpack_footer(bytes(blob))

    def test_newer_manifest_version_named_in_error(self, tmp_path):
        path = str(tmp_path / "t")
        write_table(path, {"a": np.arange(10)})
        manifest_path = os.path.join(path, store_format.MANIFEST_NAME)
        with open(manifest_path) as fh:
            doc = json.load(fh)
        doc["version"] = store_format.VERSION + 1
        with open(manifest_path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ValueError, match=(
                rf"version {store_format.VERSION + 1} is newer than the "
                rf"supported version {store_format.VERSION}")):
            Table.open(path)

    def test_newer_deletion_vector_version_named_in_error(self):
        blob = bytearray(store_format.pack_deletion_vector(
            np.zeros(8, dtype=bool)))
        blob[4] = store_format.DV_VERSION + 1
        with pytest.raises(ValueError, match=(
                rf"version {store_format.DV_VERSION + 1} is newer than "
                rf"the supported version {store_format.DV_VERSION}")):
            store_format.unpack_deletion_vector(bytes(blob))

    def test_deletion_vector_roundtrip_and_corruption(self):
        mask = np.zeros(100, dtype=bool)
        mask[[0, 17, 99]] = True
        blob = store_format.pack_deletion_vector(mask)
        assert np.array_equal(store_format.unpack_deletion_vector(blob),
                              mask)
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF
        with pytest.raises(ValueError, match="checksum mismatch"):
            store_format.unpack_deletion_vector(bytes(corrupt))
        with pytest.raises(ValueError, match="not a deletion-vector"):
            store_format.unpack_deletion_vector(b"XXXX" + blob[4:])


class TestCacheStatsExplain:
    """Cache hits/misses flow through ExecStats into explain()
    (satellite, PR 5)."""

    def test_explain_reports_hits_and_misses(self, tmp_path):
        from repro.exec import Plan
        from repro.store.executor import StoreSource

        path, _ = sensor_table(tmp_path, n=4000, shard_rows=1000,
                               chunk_rows=250)
        with Table.open(path) as table:
            source = StoreSource(table)
            plan = Plan.scan(["reading"])
            cold = plan.execute(source)
            assert cold.stats.cache_misses > 0
            assert cold.stats.cache_hits == 0
            assert (f"cache: 0 hits, {cold.stats.cache_misses} misses"
                    in cold.explain())
            warm = plan.execute(source)
            assert warm.stats.cache_misses == 0
            assert warm.stats.cache_hits == cold.stats.cache_misses
            assert (f"cache: {warm.stats.cache_hits} hits, 0 misses"
                    in warm.explain())
            assert warm.stats.bytes_read == 0
            # the legacy ScanStats shape carries the same split
            legacy = table.scan(columns=["reading"])
            assert legacy.stats.cache_hits > 0
            assert legacy.stats.cache_misses == 0

    def test_uncached_table_counts_no_cache_traffic(self, tmp_path):
        from repro.exec import Plan
        from repro.store.executor import StoreSource

        path, _ = sensor_table(tmp_path, n=2000, shard_rows=1000)
        with Table.open(path, cache_bytes=0) as table:
            res = Plan.scan(["reading"]).execute(StoreSource(table))
            assert res.stats.cache_hits == 0
            assert res.stats.cache_misses == 0
            assert res.stats.bytes_read > 0


class TestRepublishRace:
    """A reader racing TableWriter's atomic republish sees the old or
    the new table in full, never a mix (satellite, PR 5)."""

    def test_concurrent_readers_never_see_a_torn_table(self, tmp_path):
        import threading

        path = str(tmp_path / "t")
        old = {"a": np.arange(4000), "b": np.arange(4000) * 2}
        new = {"a": np.arange(5000) + 10, "b": np.arange(5000) * 3}
        write_table(path, old, shard_rows=500)

        stop = threading.Event()
        outcomes: list[str] = []
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    with Table.open(path, cache_bytes=0) as table:
                        a = table.read_column("a")
                        b = table.read_column("b")
                except (ValueError, OSError):
                    continue  # mid-swap transient; try again
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                if np.array_equal(a, old["a"]) and \
                        np.array_equal(b, old["b"]):
                    outcomes.append("old")
                elif np.array_equal(a, new["a"]) and \
                        np.array_equal(b, new["b"]):
                    outcomes.append("new")
                else:
                    errors.append(AssertionError(
                        f"torn table: {len(a)} rows, "
                        f"a[:3]={a[:3]}, b[:3]={b[:3]}"))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(10):  # republish repeatedly under the readers
                write_table(path, old, shard_rows=500, overwrite=True)
                write_table(path, new, shard_rows=500, overwrite=True)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors[0]
        assert "new" in outcomes  # the readers really did observe data
