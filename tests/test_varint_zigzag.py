"""Tests for varints and the zigzag transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class TestUvarint:
    @pytest.mark.parametrize("value,nbytes", [
        (0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3),
    ])
    def test_known_lengths(self, value, nbytes):
        assert len(encode_uvarint(value)) == nbytes

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        blob = encode_uvarint(1 << 40)
        with pytest.raises(ValueError):
            decode_uvarint(blob[:-1])

    @given(st.integers(0, 1 << 128))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, value):
        blob = encode_uvarint(value)
        out, offset = decode_uvarint(blob)
        assert out == value
        assert offset == len(blob)

    def test_decode_at_offset(self):
        blob = b"\xAA" + encode_uvarint(300)
        out, offset = decode_uvarint(blob, 1)
        assert out == 300
        assert offset == len(blob)


class TestSvarint:
    @given(st.integers(-(1 << 90), 1 << 90))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, value):
        blob = encode_svarint(value)
        out, offset = decode_svarint(blob)
        assert out == value
        assert offset == len(blob)

    def test_small_magnitudes_are_one_byte(self):
        for value in (-64, -1, 0, 1, 63):
            assert len(encode_svarint(value)) == 1


class TestZigzag:
    def test_interleaving_order(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert list(zigzag_encode(values)) == [0, 1, 2, 3, 4]

    @given(st.lists(st.integers(-(1 << 62), 1 << 62), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, raw):
        values = np.array(raw, dtype=np.int64)
        out = zigzag_decode(zigzag_encode(values))
        assert np.array_equal(out, values)

    def test_int64_extremes(self):
        values = np.array([np.iinfo(np.int64).min,
                           np.iinfo(np.int64).max], dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_object_dtype_roundtrip(self):
        values = np.array([1 << 80, -(1 << 80), 0], dtype=object)
        out = zigzag_decode(zigzag_encode(values))
        assert list(out) == list(values)

    def test_zigzag_monotone_in_magnitude(self):
        values = np.arange(-50, 51, dtype=np.int64)
        encoded = zigzag_encode(values)
        assert int(encoded.max()) == 100
