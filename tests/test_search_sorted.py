"""Tests for CompressedArray.search_sorted (lower-bound on sorted columns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import LecoEncoder

sorted_arrays = st.lists(st.integers(-(1 << 45), 1 << 45), min_size=1,
                         max_size=300).map(
                             lambda v: np.sort(np.array(v, dtype=np.int64)))


@pytest.mark.parametrize("partitioner", [16, "variable"])
class TestSearchSorted:
    @given(values=sorted_arrays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_searchsorted(self, partitioner, values, data):
        arr = LecoEncoder("linear", partitioner=partitioner).encode(values)
        probe = data.draw(st.integers(int(values[0]) - 5,
                                      int(values[-1]) + 5))
        expected = int(np.searchsorted(values, probe, side="left"))
        assert arr.search_sorted(probe) == expected

    def test_every_existing_value_found(self, partitioner):
        rng = np.random.default_rng(0)
        values = np.sort(rng.integers(0, 1 << 30, 2000)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner=partitioner).encode(values)
        for pos in range(0, 2000, 97):
            found = arr.search_sorted(int(values[pos]))
            assert values[found] == values[pos]

    def test_below_and_above_range(self, partitioner):
        values = (10 + 3 * np.arange(500)).astype(np.int64)
        arr = LecoEncoder("linear", partitioner=partitioner).encode(values)
        assert arr.search_sorted(-100) == 0
        assert arr.search_sorted(10 ** 9) == 500


class TestSearchSortedEdge:
    def test_empty(self):
        arr = LecoEncoder("linear", partitioner=8).encode(
            np.array([], dtype=np.int64))
        assert arr.search_sorted(5) == 0

    def test_duplicates_return_first(self):
        values = np.array([1, 7, 7, 7, 9], dtype=np.int64)
        arr = LecoEncoder("linear", partitioner=2).encode(values)
        assert arr.search_sorted(7) == 1

    def test_constant_regressor_partitions(self):
        values = np.sort(np.repeat(np.arange(50), 10)).astype(np.int64)
        arr = LecoEncoder("constant", partitioner=16).encode(values)
        for probe in (0, 13, 49, 50):
            assert arr.search_sorted(probe) == int(
                np.searchsorted(values, probe))
