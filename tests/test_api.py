"""Tests for the top-level public API (repro.compress / decompress)."""

import numpy as np
import pytest

from repro import CompressedArray, compress, decompress
from repro.bench import Measurement, measure_codec, render_table
from repro.baselines import LecoCodec
from repro.datasets import load


class TestCompressDecompress:
    @pytest.mark.parametrize("mode", ["fix", "var", "auto"])
    def test_roundtrip_modes(self, mode):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.integers(0, 40, 5000)).astype(np.int64)
        arr = compress(values, mode=mode)
        assert np.array_equal(decompress(arr), values)

    def test_roundtrip_from_bytes(self):
        values = np.arange(1000, dtype=np.int64) * 3
        arr = compress(values)
        assert np.array_equal(decompress(arr.to_bytes()), values)

    def test_auto_regressor_mixed_partitions(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([
            (np.arange(3000) ** 2) // 3,
            10 ** 8 + 5 * np.arange(3000),
        ]).astype(np.int64) + rng.integers(0, 3, 6000)
        arr = compress(values, mode="fix", regressor="auto")
        assert np.array_equal(decompress(arr), values)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            compress(np.arange(10), mode="bogus")

    def test_random_access_surface(self):
        values = (7 * np.arange(2000)).astype(np.int64)
        arr = compress(values)
        assert arr[123] == values[123]
        assert isinstance(arr, CompressedArray)

    def test_compression_beats_raw_on_structured_data(self):
        ds = load("ml", n=20_000)
        arr = compress(ds.values, mode="fix")
        assert arr.compressed_size_bytes() < ds.values.nbytes / 2


class TestBenchHarness:
    def test_measure_codec_fields(self):
        ds = load("linear", n=5000)
        m = measure_codec(LecoCodec("linear", partitioner=256), ds,
                          n_random=50, repeats=1)
        assert isinstance(m, Measurement)
        assert 0 < m.compression_ratio < 1
        assert m.random_access_ns > 0
        assert m.decode_gbps > 0
        assert m.compress_gbps > 0
        assert 0 <= m.model_ratio <= m.compression_ratio

    def test_measure_codec_detects_lossy(self):
        class Lossy(LecoCodec):
            def encode(self, values):
                seq = super().encode(values)
                broken = np.array(seq.decode_all())
                broken[0] += 1

                class Bad:
                    def __init__(self):
                        self.calls = 0

                    def decode_all(self):
                        return broken

                    def get(self, i):
                        return int(broken[i])

                    def compressed_size_bytes(self):
                        return 1

                return Bad()

        ds = load("linear", n=500)
        with pytest.raises(AssertionError):
            measure_codec(Lossy(), ds, n_random=5, repeats=1)

    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", 0.001]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_scalar_access_mode_selectable(self):
        ds = load("linear", n=2000)
        m = measure_codec(LecoCodec("linear", partitioner=256), ds,
                          n_random=20, repeats=1, access_mode="scalar")
        assert m.access_mode == "scalar"
        assert m.random_access_ns > 0
        with pytest.raises(ValueError):
            measure_codec(LecoCodec("linear", partitioner=256), ds,
                          access_mode="bogus")


class TestCodecSpec:
    def test_spec_accepted_by_compress(self):
        from repro import CodecSpec

        values = np.cumsum(np.arange(3000) % 7).astype(np.int64)
        arr = compress(values, CodecSpec(mode="var", tau=0.05))
        assert np.array_equal(decompress(arr), values)

    def test_spec_validates_mode(self):
        from repro import CodecSpec

        with pytest.raises(ValueError):
            CodecSpec(mode="bogus")

    def test_injected_selector_is_used(self):
        from repro import CodecSpec

        class CountingSelector:
            def __init__(self):
                self.calls = 0

            def recommend(self, values):
                self.calls += 1
                from repro.core.regressors import get_regressor

                return get_regressor("linear")

        selector = CountingSelector()
        values = np.cumsum(np.arange(5000) % 11).astype(np.int64)
        arr = compress(values, CodecSpec(regressor="auto",
                                         selector=selector))
        assert selector.calls == len(arr.partitions)
        assert np.array_equal(decompress(arr), values)

    def test_concurrent_auto_compress(self):
        """First-use selector construction must not race across threads."""
        from concurrent.futures import ThreadPoolExecutor

        import repro.codecs.spec as spec_mod
        from repro import CodecSpec

        old = spec_mod._default_selector
        spec_mod._default_selector = None  # force rebuild under contention
        try:
            values = np.cumsum(np.arange(2000) % 5).astype(np.int64)
            spec = CodecSpec(regressor="auto")
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(
                    lambda _: compress(values, spec), range(4)))
            for arr in results:
                assert np.array_equal(decompress(arr), values)
        finally:
            spec_mod._default_selector = old

    def test_decompress_accepts_envelope_blob(self):
        from repro import codecs

        values = np.cumsum(np.arange(2000) % 13).astype(np.int64)
        blob = codecs.get("delta").encode(values).to_bytes()
        assert np.array_equal(decompress(blob), values)
