"""Tests for ``repro.serve`` and the shared scheduler/cache (PR 7).

Five suites:

* the **morsel scheduler** itself — ordering, policies, admission
  control (``ServerBusy``, FIFO parking), cancellation, failure
  propagation, lifecycle;
* **plan wire format** — ``Plan.to_json``/``from_json`` round-trips
  every node and expression type (property-tested under hypothesis),
  unknown versions/kinds are one-line errors;
* **shared execution** — N threads running mixed plans through one
  table, one cache, and one scheduler get row-for-row the serial
  answers, with per-query stats attribution (no cross-charging);
* the **table server** end-to-end — query/explain/stats/list_tables
  over real sockets, typed error propagation, per-request deadlines,
  backpressure as ``ServerBusy`` (never a hang), malformed frames that
  do not take the server down, graceful drain-on-shutdown;
* the ``python -m repro.serve`` entry point as a subprocess.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import faults
from repro.datasets import sensor_fixture
from repro.exec import (
    And,
    Bitmap,
    ExecTimeout,
    InSet,
    MorselScheduler,
    Or,
    Plan,
    Range,
    ServerBusy,
    col,
    expr_from_json,
)
from repro.faults import FaultInjector
from repro.serve import ServeClient, TableServer, wire
from repro.store import StoreSource, Table, TableWriter
from repro.store import cli as store_cli


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def served_root(tmp_path_factory):
    """A root directory holding one 20k-row ``events`` table."""
    root = str(tmp_path_factory.mktemp("serve") / "root")
    os.makedirs(root)
    columns = sensor_fixture(20_000, seed=11)
    with TableWriter(os.path.join(root, "events"), codec="auto",
                     shard_rows=4096, chunk_rows=512) as writer:
        writer.append(columns)
    return root, columns


def _selective_plan(columns, width=100):
    ts = columns["ts"]
    lo, hi = int(ts[9000]), int(ts[9000 + width])
    return (Plan.scan(["sensor_id", "reading"])
            .where(col("ts").between(lo, hi)))


# ------------------------------------------------------------- scheduler
class TestMorselScheduler:
    @pytest.mark.parametrize("policy", ["fair", "sjf"])
    def test_results_come_back_in_item_order(self, policy):
        with MorselScheduler(workers=4, policy=policy) as sched:
            out = sched.run_query(lambda i: i * i, range(50),
                                  threading.Event())
            assert out == [i * i for i in range(50)]
            assert sched.granules_executed == 50
            assert sched.queries_completed == 1

    def test_concurrent_queries_interleave_on_one_pool(self):
        with MorselScheduler(workers=2) as sched:
            results = {}

            def submit(name, n):
                results[name] = sched.run_query(
                    lambda i: (name, i), range(n), threading.Event())

            threads = [threading.Thread(target=submit, args=(k, 30))
                       for k in ("a", "b", "c")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for k in ("a", "b", "c"):
                assert results[k] == [(k, i) for i in range(30)]
            assert sched.granules_executed == 90
            # one fixed pool: never more threads than workers
            assert len(sched._threads) == 2

    def test_arg_validation(self):
        with pytest.raises(ValueError, match="policy"):
            MorselScheduler(policy="lifo")
        with pytest.raises(ValueError, match="workers"):
            MorselScheduler(workers=0)
        with pytest.raises(ValueError, match="max_inflight"):
            MorselScheduler(max_inflight=0)
        with pytest.raises(ValueError, match="queue_depth"):
            MorselScheduler(queue_depth=-1)

    def _hold_one_slot(self, sched):
        """Occupy the scheduler with a query parked on a gate."""
        gate = threading.Event()
        running = threading.Event()

        def slow(i):
            running.set()
            gate.wait(10)
            return i

        holder = threading.Thread(
            target=lambda: sched.run_query(slow, [0], threading.Event()))
        holder.start()
        assert running.wait(5)
        return gate, holder

    def test_admission_rejects_with_server_busy(self):
        sched = MorselScheduler(workers=1, max_inflight=1, queue_depth=0)
        gate, holder = self._hold_one_slot(sched)
        try:
            with pytest.raises(ServerBusy, match="at capacity"):
                sched.run_query(lambda i: i, [1], threading.Event())
            assert sched.queries_rejected == 1
        finally:
            gate.set()
            holder.join()
            sched.close()

    def test_parked_query_runs_when_a_slot_frees(self):
        sched = MorselScheduler(workers=1, max_inflight=1, queue_depth=2)
        gate, holder = self._hold_one_slot(sched)
        parked_result = []

        def parked():
            parked_result.append(
                sched.run_query(lambda i: i + 10, [1, 2],
                                threading.Event()))

        waiter = threading.Thread(target=parked)
        waiter.start()
        time.sleep(0.05)
        assert sched.stats()["parked"] == 1
        assert not parked_result  # genuinely waiting, not running
        gate.set()
        holder.join()
        waiter.join(5)
        assert parked_result == [[11, 12]]
        sched.close()

    def test_deadline_spent_parked_returns_all_skipped(self):
        sched = MorselScheduler(workers=1, max_inflight=1, queue_depth=2)
        gate, holder = self._hold_one_slot(sched)
        try:
            out = sched.run_query(
                lambda i: i, [1, 2, 3], threading.Event(),
                deadline=time.perf_counter() + 0.05)
            assert out == [None, None, None]
        finally:
            gate.set()
            holder.join()
            sched.close()

    def test_deadline_mid_query_drains_queued_granules(self):
        with MorselScheduler(workers=1) as sched:
            cancel = threading.Event()

            def granule(i):
                time.sleep(0.02)
                return i

            start = time.perf_counter()
            out = sched.run_query(
                granule, range(100), cancel,
                deadline=time.perf_counter() + 0.05)
            assert time.perf_counter() - start < 5.0
            assert cancel.is_set()
            done = [r for r in out if r is not None]
            assert len(done) < 100  # the tail was drained, not run
            assert done == list(range(len(done)))  # prefix ran in order

    def test_first_failure_cancels_the_job_and_reraises(self):
        with MorselScheduler(workers=2) as sched:
            cancel = threading.Event()

            def granule(i):
                if i == 3:
                    raise RuntimeError("granule 3 exploded")
                return i

            with pytest.raises(RuntimeError, match="granule 3"):
                sched.run_query(granule, range(50), cancel)
            assert cancel.is_set()

    def test_closed_scheduler_refuses_queries(self):
        sched = MorselScheduler(workers=1)
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.run_query(lambda i: i, [1], threading.Event())

    def test_empty_item_list(self):
        with MorselScheduler(workers=1) as sched:
            assert sched.run_query(lambda i: i, [],
                                   threading.Event()) == []


# ------------------------------------------------------- plan wire format
class TestPlanJson:
    def _shapes(self, columns):
        bitmap = np.zeros(200, dtype=bool)
        bitmap[7::13] = True
        return [
            Plan.scan(None),
            Plan.scan(["ts", "reading"]).where(
                Or(Range("ts", 10, 500), InSet("status", [0, 2])))
            .project(["reading"]),
            Plan.scan(["reading"]).where(
                And(Bitmap(bitmap), Range("reading", None, 100)))
            .aggregate({"total": ("sum", "reading"),
                        "n": ("count", "reading")},
                       group_by="sensor_id"),
            Plan.scan(["sensor_id"]).join(
                "sensor_id", build={"sensor_id": [1, 2, 3],
                                    "weight": [10, 20, 30]}, how="inner"),
            Plan.scan(["sensor_id"]).join(
                "sensor_id", keys=[4, 5, 6], how="semi"),
        ]

    def test_every_node_kind_round_trips(self, served_root):
        _, columns = served_root
        for plan in self._shapes(columns):
            blob = plan.to_json()
            json.dumps(blob)  # must be pure JSON
            revived = Plan.from_json(blob)
            assert revived.to_json() == blob
            assert [type(n) for n in revived.nodes] == \
                [type(n) for n in plan.nodes]

    def test_round_trip_executes_identically(self, served_root):
        root, columns = served_root
        with Table.open(os.path.join(root, "events")) as table:
            source = StoreSource(table)
            plan = _selective_plan(columns)
            a = plan.execute(source, threads=1)
            b = Plan.from_json(plan.to_json()).execute(source, threads=1)
            np.testing.assert_array_equal(a.row_ids, b.row_ids)
            for name in a.columns:
                np.testing.assert_array_equal(a.columns[name],
                                              b.columns[name])

    def test_unknown_version_is_one_line(self):
        blob = Plan.scan(None).to_json()
        blob["v"] = 99
        with pytest.raises(ValueError) as info:
            Plan.from_json(blob)
        assert "unsupported plan JSON version 99" in str(info.value)
        assert "\n" not in str(info.value)

    def test_unknown_node_kind_is_one_line(self):
        blob = Plan.scan(None).to_json()
        blob["nodes"].append({"kind": "sort", "by": "ts"})
        with pytest.raises(ValueError, match="unknown plan node kind"):
            Plan.from_json(blob)

    def test_malformed_payloads_are_one_line(self):
        with pytest.raises(ValueError, match="must be a dict"):
            Plan.from_json([1, 2])
        with pytest.raises(ValueError, match="no nodes"):
            Plan.from_json({"v": 1, "nodes": []})
        with pytest.raises(ValueError, match="start with a scan"):
            Plan.from_json({"v": 1, "nodes": [{"kind": "project"}]})
        blob = Plan.scan(None).to_json()
        blob["nodes"].append({"kind": "filter"})  # missing "expr"
        with pytest.raises(ValueError, match="malformed plan JSON"):
            Plan.from_json(blob)
        blob = Plan.scan(None).to_json()
        blob["nodes"].append(dict(blob["nodes"][0]))
        with pytest.raises(ValueError, match="second scan"):
            Plan.from_json(blob)

    def test_expr_json_rejections(self):
        with pytest.raises(ValueError, match="unknown expression kind"):
            expr_from_json({"kind": "regex", "column": "ts"})
        with pytest.raises(ValueError, match="malformed"):
            expr_from_json({"kind": "range"})
        blob = Bitmap(np.ones(100, dtype=bool)).to_json()
        blob["n"] = 999
        with pytest.raises(ValueError, match="bitmap"):
            expr_from_json(blob)

    if HAVE_HYPOTHESIS:
        _COLS = st.sampled_from(["ts", "reading", "status"])
        _BOUND = st.one_of(st.none(), st.integers(-1000, 1000))
        _LEAF = st.one_of(
            st.builds(Range, _COLS, _BOUND, _BOUND),
            st.builds(lambda c, vs: InSet(c, vs), _COLS,
                      st.lists(st.integers(-100, 100), min_size=1,
                               max_size=6)),
            st.builds(lambda bits: Bitmap(np.asarray(bits, dtype=bool)),
                      st.lists(st.booleans(), min_size=1, max_size=64)),
        )
        _EXPR = st.recursive(
            _LEAF,
            lambda children: st.one_of(
                st.builds(lambda cs: And.of(*cs),
                          st.lists(children, min_size=1, max_size=3)),
                st.builds(lambda cs: Or.of(*cs),
                          st.lists(children, min_size=1, max_size=3))),
            max_leaves=8)

        @st.composite
        def _plans(draw):
            plan = Plan.scan(draw(st.one_of(
                st.none(), st.just(["ts", "reading"]))))
            for _ in range(draw(st.integers(0, 2))):
                plan = plan.where(draw(TestPlanJson._EXPR))
            terminal = draw(st.sampled_from(
                ["row", "project", "aggregate", "join"]))
            if terminal == "project":
                plan = plan.project(["ts"])
            elif terminal == "aggregate":
                plan = plan.aggregate(
                    {"s": ("sum", "reading"), "m": ("max", "ts")},
                    group_by=draw(st.sampled_from([None, "status"])))
            elif terminal == "join":
                keys = draw(st.lists(st.integers(0, 50), min_size=1,
                                     max_size=5, unique=True))
                if draw(st.booleans()):
                    plan = plan.join(
                        "ts", build={"ts": keys,
                                     "w": [k * 2 for k in keys]},
                        how=draw(st.sampled_from(["semi", "inner"])))
                else:
                    plan = plan.join("ts", keys=keys, how="semi")
            return plan

        @settings(max_examples=120, deadline=None)
        @given(plan=_plans())
        def test_property_any_plan_round_trips(self, plan):
            blob = plan.to_json()
            json.dumps(blob)
            revived = Plan.from_json(blob)
            assert revived.to_json() == blob


# ------------------------------------------------------- shared execution
class TestSharedExecution:
    """N threads, mixed plans, one Table, one cache, one scheduler: every
    result matches its serial counterpart row-for-row and every query's
    stats describe its own work (no cross-charging)."""

    def _mixed_plans(self, columns):
        ts = columns["ts"]
        bitmap = np.zeros(len(ts), dtype=bool)
        bitmap[::97] = True
        return [
            _selective_plan(columns),
            Plan.scan(["reading"]).where(
                InSet("status", [0, 2])).project(["reading"]),
            Plan.scan(["reading"]).aggregate(
                {"total": ("sum", "reading"), "n": ("count", "reading")},
                group_by="sensor_id"),
            Plan.scan(["sensor_id", "reading"]).where(
                Or(Range("ts", int(ts[100]), int(ts[400])),
                   Range("ts", int(ts[15_000]), int(ts[15_300])))),
            Plan.scan(["ts"]).where(Bitmap(bitmap)),
        ]

    def test_concurrent_matches_serial_row_for_row(self, served_root):
        root, columns = served_root
        plans = self._mixed_plans(columns)
        with Table.open(os.path.join(root, "events")) as table:
            source = StoreSource(table)
            serial = [p.execute(source, threads=1) for p in plans]
            sched = MorselScheduler(workers=4)
            failures = []

            def run(idx):
                try:
                    for _ in range(3):
                        res = plans[idx].execute(source, scheduler=sched)
                        ref = serial[idx]
                        if ref.groups is not None:
                            assert res.groups == ref.groups
                        else:
                            np.testing.assert_array_equal(
                                res.row_ids, ref.row_ids)
                            for name in ref.columns:
                                np.testing.assert_array_equal(
                                    res.columns[name], ref.columns[name])
                        # own-work attribution: scan accounting is
                        # deterministic per plan, concurrency or not
                        assert res.stats.chunks_scanned == \
                            ref.stats.chunks_scanned
                        assert res.stats.granules_pruned == \
                            ref.stats.granules_pruned
                        assert res.stats.cache_hits + \
                            res.stats.cache_misses == \
                            ref.stats.cache_hits + ref.stats.cache_misses
                except Exception as exc:
                    failures.append(f"plan {idx}: {exc!r}")

            threads = [threading.Thread(target=run, args=(i % len(plans),))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            sched.close()
            assert failures == []

    def test_eviction_attribution_under_thrash(self, served_root):
        """A cache too small for the working set: every query still sees
        hits+misses covering exactly its own chunk loads, and evictions
        land on the query whose insert pushed entries out."""
        root, columns = served_root
        with Table.open(os.path.join(root, "events"),
                        cache_bytes=2048) as table:
            source = StoreSource(table)
            plan = _selective_plan(columns, width=4000)
            serial = plan.execute(source, threads=1)
            results = []

            sched = MorselScheduler(workers=2)
            def run():
                results.append(plan.execute(source, scheduler=sched))

            threads = [threading.Thread(target=run) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            sched.close()
            assert len(results) == 4
            for res in results:
                assert res.stats.cache_hits + res.stats.cache_misses == \
                    serial.stats.cache_hits + serial.stats.cache_misses
                # evictions are charged to inserts: a query that
                # missed nothing cannot have evicted anything
                if res.stats.cache_misses == 0:
                    assert res.stats.cache_evictions == 0
            # the tiny cache really thrashed, and the evictions were
            # attributed to the queries that caused them
            assert table.cache.evictions > 0
            total_attributed = serial.stats.cache_evictions + \
                sum(r.stats.cache_evictions for r in results)
            assert total_attributed == table.cache.evictions


# ------------------------------------------------------------------ wire
class TestWire:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_frame_round_trip(self):
        a, b = self._pair()
        wire.send_frame(a, {"op": "ping", "v": 1})
        assert wire.recv_frame(b) == {"op": "ping", "v": 1}
        a.close()
        assert wire.recv_frame(b) is None  # clean EOF
        b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.recv_frame(b)
        a.close()
        b.close()

    def test_torn_frame_rejected(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", 100) + b'{"op"')
        a.close()
        with pytest.raises(wire.WireError, match="mid-frame"):
            wire.recv_frame(b)
        b.close()

    def test_non_object_payload_rejected(self):
        a, b = self._pair()
        payload = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.recv_frame(b)
        a.close()
        b.close()

    def test_garbage_payload_rejected(self):
        a, b = self._pair()
        payload = b"\xff\xfe not json"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(wire.WireError, match="not valid JSON"):
            wire.recv_frame(b)
        a.close()
        b.close()


# ---------------------------------------------------------------- server
@pytest.fixture()
def server(served_root):
    root, _ = served_root
    srv = TableServer(root, max_inflight=4, queue_depth=8).start()
    yield srv
    srv.shutdown()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port) as c:
        yield c


class TestTableServer:
    def test_ping_and_list_tables(self, client):
        assert client.ping() == "pong"
        assert client.list_tables() == ["events"]

    def test_query_matches_local_execution(self, served_root, client):
        root, columns = served_root
        plan = _selective_plan(columns)
        with Table.open(os.path.join(root, "events")) as table:
            ref = plan.execute(StoreSource(table), threads=1)
        res = client.query("events", plan, timeout_s=10.0)
        assert res["n_rows"] == ref.n_rows
        assert not res["truncated"]
        np.testing.assert_array_equal(res["row_ids"], ref.row_ids)
        for name in ref.columns:
            np.testing.assert_array_equal(res["columns"][name],
                                          ref.columns[name])

    def test_limit_caps_rows_not_stats(self, served_root, client):
        _, columns = served_root
        res = client.query("events", _selective_plan(columns), limit=7)
        assert res["truncated"]
        assert len(res["row_ids"]) == 7
        assert res["n_rows"] > 7  # stats describe the full execution

    def test_aggregate_groups_travel(self, served_root, client):
        root, columns = served_root
        plan = Plan.scan(["reading"]).aggregate(
            {"total": ("sum", "reading")}, group_by="sensor_id")
        with Table.open(os.path.join(root, "events")) as table:
            ref = plan.execute(StoreSource(table), threads=1)
        res = client.query("events", plan)
        assert {k: v for k, v in res["groups"]} == ref.groups

    def test_explain_carries_cache_attribution(self, served_root, client):
        _, columns = served_root
        res = client.explain("events", _selective_plan(columns))
        assert "cache:" in res["explain"]
        assert "evicted" in res["explain"]
        assert "row_ids" not in res  # explain drops the row payload

    def test_stats_report_shape(self, served_root, client):
        _, columns = served_root
        client.query("events", _selective_plan(columns))
        stats = client.stats()
        assert stats["mode"] == "shared-scheduler"
        assert stats["queries_ok"] >= 1
        assert stats["qps"] > 0
        assert {"p50", "p90", "p99"} <= set(stats["latency_ms"])
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["scheduler"]["workers"] >= 1
        assert stats["tables"] == ["events"]

    def test_unknown_table_is_typed_one_liner(self, client):
        with pytest.raises(RuntimeError, match="unknown table 'nope'"):
            client.query("nope", Plan.scan(None))

    def test_path_traversal_table_names_rejected(self, client):
        with pytest.raises(RuntimeError, match="bad table name"):
            client.query("../etc", Plan.scan(None))

    def test_unknown_plan_version_is_one_liner(self, served_root, client):
        blob = Plan.scan(None).to_json()
        blob["v"] = 42
        with pytest.raises(RuntimeError,
                           match="unsupported plan JSON version 42"):
            client.query("events", blob)

    def test_unknown_wire_version_is_one_liner(self, client):
        with pytest.raises(RuntimeError,
                           match="unsupported request version 9"):
            client._call({"op": "ping", "v": 9})

    def test_unknown_op_and_opts_rejected(self, client):
        with pytest.raises(RuntimeError, match="unknown op"):
            client._call({"op": "drop_all_tables"})
        with pytest.raises(RuntimeError, match="unknown option"):
            client.query("events", Plan.scan(None), threads=64)

    def test_malformed_frame_does_not_kill_the_server(self, server):
        host, port = server.address
        raw = socket.create_connection((host, port))
        raw.sendall(struct.pack(">I", wire.MAX_FRAME_BYTES + 5))
        raw.close()
        raw = socket.create_connection((host, port))
        raw.sendall(b"\x00\x00\x00\x08notjson!")
        raw.close()
        # the server dropped both connections and kept serving
        with ServeClient(host, port) as c:
            assert c.ping() == "pong"

    def test_request_deadline_raises_exec_timeout(self, served_root):
        root, columns = served_root
        srv = TableServer(root, cache_bytes=0).start()
        host, port = srv.address
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.05,
                                      times=None)
        try:
            with inj, ServeClient(host, port) as c:
                with pytest.raises(ExecTimeout, match="timeout_s"):
                    c.query("events", Plan.scan(["reading"]),
                            timeout_s=0.05)
        finally:
            srv.shutdown()

    def test_backpressure_is_server_busy_not_a_hang(self, served_root):
        root, columns = served_root
        srv = TableServer(root, workers=1, max_inflight=1,
                          queue_depth=0, cache_bytes=0).start()
        host, port = srv.address
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.02,
                                      times=None)
        plan = Plan.scan(["reading"]).aggregate(
            {"n": ("count", "reading")})
        outcomes = []

        def hit():
            with ServeClient(host, port) as c:
                try:
                    outcomes.append(("ok", c.query("events", plan,
                                                   timeout_s=30.0)))
                except ServerBusy as err:
                    outcomes.append(("busy", str(err)))

        try:
            with inj:
                threads = [threading.Thread(target=hit)
                           for _ in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                assert not any(t.is_alive() for t in threads)
            kinds = [k for k, _ in outcomes]
            assert "busy" in kinds      # overload was rejected...
            assert "ok" in kinds        # ...while admitted work finished
            for kind, payload in outcomes:
                if kind == "ok":
                    assert payload["groups"][0][1]["n"] == 20_000
                else:
                    assert "at capacity" in payload
            assert srv.stats()["rejected_busy"] >= 1
        finally:
            srv.shutdown()

    def test_graceful_drain_finishes_inflight_queries(self, served_root):
        root, columns = served_root
        srv = TableServer(root, cache_bytes=0).start()
        host, port = srv.address
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.01,
                                      times=None)
        result = {}

        def slow_query():
            with ServeClient(host, port) as c:
                result["res"] = c.query(
                    "events", Plan.scan(["reading"]).aggregate(
                        {"n": ("count", "reading")}), timeout_s=60.0)

        with inj:
            worker = threading.Thread(target=slow_query)
            worker.start()
            time.sleep(0.15)  # the query is mid-flight
            srv.shutdown()    # drain: must NOT cut it off
            worker.join(timeout=60)
        assert result["res"]["groups"][0][1]["n"] == 20_000
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0)

    def test_root_that_is_itself_a_table(self, served_root):
        root, columns = served_root
        table_dir = os.path.join(root, "events")
        srv = TableServer(table_dir).start()
        try:
            host, port = srv.address
            with ServeClient(host, port) as c:
                assert c.list_tables() == ["events"]
                res = c.query("events", Plan.scan(["reading"]).aggregate(
                    {"n": ("count", "reading")}))
                assert res["groups"][0][1]["n"] == 20_000
        finally:
            srv.shutdown()


# ----------------------------------------------------------- entry point
class TestServeMain:
    def test_subprocess_lifecycle(self, served_root):
        root, columns = served_root
        src = os.path.abspath(os.path.join(
            os.path.dirname(__file__), "..", "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--root", root,
             "--max-inflight", "4"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on ")
            host, port = banner.split()[-1].rsplit(":", 1)
            with ServeClient(host, int(port)) as c:
                assert c.list_tables() == ["events"]
                res = c.query("events", _selective_plan(columns),
                              limit=5)
                assert res["n_rows"] == 100
                assert c.stats()["queries_ok"] >= 1
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0  # graceful drain exit
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# --------------------------------------------------------- CLI timeout-s
class TestCliTimeout:
    def test_scan_timeout_prints_partial_stats_and_exits_1(
            self, served_root, tmp_path, capsys):
        directory = str(tmp_path / "t")
        columns = sensor_fixture(12_000, seed=5)
        with TableWriter(directory, shard_rows=4096,
                         chunk_rows=512) as writer:
            writer.append(columns)
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.05,
                                      times=None)
        with inj:
            rc = store_cli.main(["scan", directory, "--threads", "2",
                                 "--timeout-s", "0.02"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "timeout_s=0.02" in err
        assert "partial work before the deadline" in err

    def test_scan_without_timeout_still_exits_0(self, tmp_path, capsys):
        directory = str(tmp_path / "t")
        with TableWriter(directory, shard_rows=2048) as writer:
            writer.append({"k": np.arange(4000, dtype=np.int64)})
        assert store_cli.main(["scan", directory, "--columns", "k",
                               "--timeout-s", "30"]) == 0
        assert "rows in" in capsys.readouterr().out
