"""Tests for ``repro.faults`` and the hardening it drives (PR 6).

Four suites:

* the injector itself (rule arming, counters, determinism, lifecycle);
* the **crash matrix** — a simulated crash at every hook point of the
  flush commit protocol (shard write → DV write → manifest publish →
  CURRENT swap → WAL rotate) and of compaction, asserting that
  reopening yields exactly the pre- or post-commit snapshot with every
  acknowledged operation intact;
* **corruption detection** — envelope/footer crc32, the
  ``on_corruption`` scan policy, the v1 compatibility path, the scrub
  walker, and the hypothesis single-bit-flip property (flip any bit in
  a shard file: a scan either raises/skips-and-reports or returns
  provably correct rows — never silently wrong ones);
* **executor resilience** — ``timeout_s``/``ExecTimeout``, bounded EIO
  retry, ``GranuleError`` context wrapping, and writer cleanup under
  injected ENOSPC.
"""

import errno
import itertools
import json
import os
import shutil
import threading
import time
from dataclasses import asdict, replace

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import faults
from repro.exec import CorruptChunkError, ExecTimeout, GranuleError
from repro.exec.run import ExecStats
from repro.faults import FaultInjector, SimulatedCrash
from repro.mutate import MutableTable, recover_with_report
from repro.mutate.wal import WriteAheadLog, wal_file_name
from repro.store import Table, TableWriter, scrub_table, write_table
from repro.store import cli as store_cli
from repro.store import format as store_format
from repro.store.format import (
    FOOTER_CRC_LEN,
    FOOTER_MAGIC,
    HEADER_LEN,
    TRAILER_LEN,
    ShardFooter,
    pack_footer,
    unpack_footer,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends with no injector installed."""
    faults.uninstall()
    yield
    faults.uninstall()


def _sorted_by(columns: dict, key: str) -> dict:
    order = np.argsort(columns[key], kind="stable")
    return {name: np.asarray(values)[order]
            for name, values in columns.items()}


def _tmp_files(directory: str) -> list:
    return [n for n in os.listdir(directory) if n.endswith(".tmp")]


# ---------------------------------------------------------------- injector
class TestInjector:
    def test_rule_fires_at_nth_matching_invocation(self):
        inj = FaultInjector().fail_at("x.write", at=3)
        with inj:
            faults.fire("x.write")
            faults.fire("y.write")  # different point: does not advance
            faults.fire("x.write")
            with pytest.raises(OSError):
                faults.fire("x.write")
        assert inj.fired("x.write") == 1

    def test_glob_pattern_matches_many_points(self):
        inj = FaultInjector().fail_at("*.fsync", times=None)
        with inj:
            for point in ("manifest.fsync", "current.fsync", "dv.fsync"):
                with pytest.raises(OSError):
                    faults.fire(point)
            faults.fire("manifest.rename")  # not an fsync
        assert inj.fired() == 3

    def test_times_window_bounds_the_firing(self):
        inj = FaultInjector().fail_at("p", at=2, times=2)
        with inj:
            faults.fire("p")                      # 1st: before window
            for _ in range(2):                    # 2nd, 3rd: firing
                with pytest.raises(OSError):
                    faults.fire("p")
            faults.fire("p")                      # 4th: window closed
        assert inj.fired("p") == 2

    def test_crash_raises_simulated_crash_not_oserror(self):
        inj = FaultInjector().crash_at("q")
        with inj, pytest.raises(SimulatedCrash):
            faults.fire("q")
        assert not issubclass(SimulatedCrash, OSError)

    def test_torn_write_length_is_seed_deterministic(self, tmp_path):
        def torn_size(seed):
            path = tmp_path / f"torn-{seed}-{torn_size.n}"
            torn_size.n += 1
            inj = FaultInjector(seed=seed).torn_write_at("w")
            with inj, pytest.raises(SimulatedCrash), \
                    open(path, "wb") as fh:
                faults.write_through("w", fh, bytes(1000))
            return path.stat().st_size

        torn_size.n = 0
        assert torn_size(7) == torn_size(7)
        assert torn_size(7) != torn_size(8)  # 1/1000 collision odds

    def test_error_write_lands_partial_prefix(self, tmp_path):
        path = tmp_path / "part"
        inj = FaultInjector().fail_at("w", error=errno.ENOSPC,
                                      partial=100)
        with inj, pytest.raises(OSError) as info, open(path, "wb") as fh:
            faults.write_through("w", fh, bytes(1000))
        assert info.value.errno == errno.ENOSPC
        assert path.stat().st_size == 100

    def test_flip_bit_corrupts_exactly_one_bit(self, tmp_path):
        path = tmp_path / "flip"
        data = bytes(range(256))
        inj = FaultInjector().flip_bit_at("w", bit=42)
        with inj, open(path, "wb") as fh:
            faults.write_through("w", fh, data)
        written = path.read_bytes()
        assert written != data
        diff = np.frombuffer(written, np.uint8) ^ \
            np.frombuffer(data, np.uint8)
        assert int(np.unpackbits(diff).sum()) == 1

    def test_injectors_do_not_nest(self):
        with FaultInjector():
            with pytest.raises(ValueError, match="already installed"):
                faults.install(FaultInjector())
        assert faults.active() is None

    def test_no_injector_hooks_are_noops(self, tmp_path):
        faults.fire("anything.at.all")
        path = tmp_path / "plain"
        with open(path, "wb") as fh:
            faults.write_through("anything", fh, b"payload")
        assert path.read_bytes() == b"payload"

    def test_rule_arg_validation(self):
        with pytest.raises(ValueError, match="at must be"):
            FaultInjector().crash_at("p", at=0)
        with pytest.raises(ValueError, match="times must be"):
            FaultInjector().fail_at("p", times=0)


# ------------------------------------------------------------ crash matrix
#: every hook point the flush commit protocol crosses, in order
FLUSH_CRASH_POINTS = [
    "shard.write", "shard.publish",
    "dv.write", "dv.fsync", "dv.rename",
    "manifest.write", "manifest.fsync", "manifest.rename",
    "current.write", "current.fsync", "current.rename",
    "wal.rotate.write", "wal.rotate.fsync", "wal.rotate.rename",
]

COMPACT_CRASH_POINTS = [
    "compact.rewrite", "shard.write", "shard.publish", "compact.commit",
    "manifest.rename", "current.write", "current.rename",
    "wal.rotate.rename",
]


class TestCrashMatrix:
    """Kill the commit protocol between any two steps; recovery must land
    on exactly the pre- or post-commit snapshot, and the reopened mutable
    table must replay every acknowledged operation."""

    def _build(self, directory):
        """Base table (gen 1) + acknowledged-but-unflushed tail/deletes."""
        table = MutableTable.create(directory, schema=("k", "v"),
                                    shard_rows=2048, chunk_rows=256)
        k0 = np.arange(4000, dtype=np.int64)
        table.append({"k": k0, "v": k0 * 3})
        table.flush()
        k1 = np.arange(4000, 6000, dtype=np.int64)
        table.append({"k": k1, "v": k1 * 3})
        table.delete(("k", 100, 600))
        keep = np.concatenate([k0, k1])
        keep = keep[(keep < 100) | (keep >= 600)]
        reference = {"k": keep, "v": keep * 3}   # all acked ops applied
        pre = {"k": k0, "v": k0 * 3}             # the gen-1 snapshot
        return table, pre, reference

    @pytest.mark.parametrize("point", FLUSH_CRASH_POINTS)
    def test_flush_crash_point(self, tmp_path, point):
        directory = str(tmp_path / "t")
        table, pre, reference = self._build(directory)
        inj = FaultInjector(seed=11).crash_at(point)
        with inj, pytest.raises(SimulatedCrash):
            table.flush()
        assert inj.fired(point) == 1, f"{point} never fired"
        del table  # the process "died": no close, no cleanup

        # the published snapshot is exactly pre- or post-commit
        with Table.open(directory) as snap:
            got = _sorted_by(snap.scan().columns, "k")
            matches_pre = np.array_equal(got["k"], pre["k"]) and \
                np.array_equal(got["v"], pre["v"])
            matches_post = np.array_equal(got["k"], reference["k"]) and \
                np.array_equal(got["v"], reference["v"])
            assert matches_pre or matches_post, \
                f"crash at {point}: snapshot is neither pre nor post"

        # the reopened table replays every acknowledged operation
        reopened = MutableTable.open(directory)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        np.testing.assert_array_equal(got["v"], reference["v"])
        assert _tmp_files(directory) == []  # staging debris reaped

        # and the next commit completes normally
        reopened.flush()
        reopened.close()
        with Table.open(directory) as snap:
            got = _sorted_by(snap.scan().columns, "k")
            np.testing.assert_array_equal(got["k"], reference["k"])
        assert scrub_table(directory).ok

    @pytest.mark.parametrize("point", COMPACT_CRASH_POINTS)
    def test_compact_crash_point(self, tmp_path, point):
        directory = str(tmp_path / "t")
        table, _, reference = self._build(directory)
        table.flush()  # gen 2: deletes live as DV sidecars
        inj = FaultInjector(seed=13).crash_at(point)
        with inj, pytest.raises(SimulatedCrash):
            table.compact(threshold=1.0)
        assert inj.fired(point) == 1, f"{point} never fired"
        del table

        # compaction only reorganises: pre and post agree on content
        reopened = MutableTable.open(directory)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        np.testing.assert_array_equal(got["v"], reference["v"])
        assert _tmp_files(directory) == []
        # pre-commit crash: retrying compacts; post-commit: a no-op —
        # either way the content survives another full cycle
        reopened.compact(threshold=1.0)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        reopened.close()
        assert scrub_table(directory).ok

    def test_background_compactor_crash_with_concurrent_readers(
            self, tmp_path):
        """Seeded crash at ``compact.commit`` fired from the
        BackgroundCompactor thread while serve-path reads are in
        flight: every reader sees exactly the old or the new
        generation (content always equals the reference, never a mix),
        the compactor records the crash instead of swallowing it, and
        reopening repairs."""
        from repro.exec import MorselScheduler, Plan
        from repro.mutate.compact import BackgroundCompactor
        from repro.store import StoreSource

        directory = str(tmp_path / "t")
        table, _, reference = self._build(directory)
        table.flush()  # deletes now live as DV sidecars
        pre_gen = table.generation

        sched = MorselScheduler(workers=2, name="test-serve-readers")
        stop = threading.Event()
        failures: list[str] = []
        generations: set[int] = set()
        reads = [0]

        def reader():
            while not stop.is_set():
                try:
                    with Table.open(directory) as snap:
                        generations.add(snap.generation)
                        res = Plan.scan(["k", "v"]).execute(
                            StoreSource(snap), scheduler=sched)
                        got = _sorted_by(res.columns, "k")
                        if not (np.array_equal(got["k"], reference["k"])
                                and np.array_equal(got["v"],
                                                   reference["v"])):
                            failures.append(
                                f"gen {snap.generation}: content is "
                                f"neither pre nor post")
                            return
                        reads[0] += 1
                except Exception as exc:
                    failures.append(repr(exc))
                    return

        inj = FaultInjector(seed=23).crash_at("compact.commit")
        readers = [threading.Thread(target=reader) for _ in range(2)]
        compactor = BackgroundCompactor(table, threshold=1.0,
                                        interval_s=0.01)
        with inj:
            for thread in readers:
                thread.start()
            compactor.start()
            compactor.trigger()
            for _ in range(1000):  # the injected crash kills the thread
                if compactor.crashed is not None:
                    break
                time.sleep(0.01)
            stop.set()
            for thread in readers:
                thread.join()
        compactor.stop()

        assert isinstance(compactor.crashed, SimulatedCrash)
        assert inj.fired("compact.commit") == 1
        assert compactor.history == []          # nothing was committed
        assert compactor.errors == []           # crash not swallowed
        assert failures == []
        assert reads[0] > 0                     # readers really ran
        assert generations == {pre_gen}         # commit never published
        sched.close()
        del table, compactor  # the "process" died: no cleanup

        # reopen repairs, the next compaction lands, content survives
        reopened = MutableTable.open(directory)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        np.testing.assert_array_equal(got["v"], reference["v"])
        assert _tmp_files(directory) == []
        reopened.compact(threshold=1.0)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        reopened.close()
        assert scrub_table(directory).ok

    def test_torn_manifest_write_recovers(self, tmp_path):
        """Not just clean crashes: a manifest torn mid-write must also
        leave the pre-commit snapshot intact."""
        directory = str(tmp_path / "t")
        table, pre, reference = self._build(directory)
        inj = FaultInjector(seed=17).torn_write_at("manifest.write")
        with inj, pytest.raises(SimulatedCrash):
            table.flush()
        del table
        with Table.open(directory) as snap:
            got = _sorted_by(snap.scan().columns, "k")
            np.testing.assert_array_equal(got["k"], pre["k"])
        reopened = MutableTable.open(directory)
        got = _sorted_by(reopened.scan().columns, "k")
        np.testing.assert_array_equal(got["k"], reference["k"])
        reopened.close()


# ------------------------------------------------------------ WAL forensics
class TestWalForensics:
    def _write_wal(self, path, n_records=3):
        wal = WriteAheadLog(str(path))
        for i in range(n_records):
            wal.log_append({"k": np.arange(5, dtype=np.int64) + i})
        wal.close()

    def test_clean_log_reports_no_sidecar(self, tmp_path):
        path = tmp_path / wal_file_name(0)
        self._write_wal(path)
        records, report = recover_with_report(str(path))
        assert len(records) == 3
        assert report == {"records": 3, "bytes_dropped": 0,
                          "records_dropped": 0, "sidecar": None}
        assert not os.path.exists(str(path) + ".corrupt")

    def test_torn_tail_preserved_as_forensics_sidecar(self, tmp_path):
        path = tmp_path / wal_file_name(0)
        self._write_wal(path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])  # tear the last record mid-frame
        records, report = recover_with_report(str(path))
        assert len(records) == 2
        assert report["records"] == 2
        assert report["records_dropped"] == 1
        assert report["bytes_dropped"] > 0
        sidecar = str(path) + ".corrupt"
        assert report["sidecar"] == sidecar
        # the sidecar is the dropped tail, byte for byte
        with open(sidecar, "rb") as fh:
            tail = fh.read()
        assert blob[:-20].endswith(tail)
        assert len(tail) == report["bytes_dropped"]
        # the live log was repaired: appending works, nothing re-drops
        records2, report2 = recover_with_report(str(path))
        assert len(records2) == 2 and report2["sidecar"] is None

    def test_reopen_after_torn_append_reports_and_recovers(self, tmp_path):
        directory = str(tmp_path / "t")
        table = MutableTable.create(directory, schema=("k",))
        table.append({"k": np.arange(100, dtype=np.int64)})
        # the injector counts only while installed: this is invocation 1
        inj = FaultInjector(seed=2).torn_write_at("wal.append")
        with inj, pytest.raises(SimulatedCrash):
            table.append({"k": np.arange(100, 200, dtype=np.int64)})
        del table
        reopened = MutableTable.open(directory)
        assert reopened.n_rows == 100  # only the acked append survives
        assert reopened.last_recovery["bytes_dropped"] > 0
        assert reopened.last_recovery["sidecar"].endswith(".log.corrupt")
        # the sidecar survives until the next commit rotates past it
        assert os.path.exists(reopened.last_recovery["sidecar"])
        reopened.append({"k": np.arange(200, 250, dtype=np.int64)})
        reopened.flush()
        assert not any(n.endswith(".corrupt")
                       for n in os.listdir(directory))
        reopened.close()


# ------------------------------------------------------- corruption detect
def _flip_bit(path: str, byte: int, bit: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(byte)
        value = fh.read(1)[0]
        fh.seek(byte)
        fh.write(bytes([value ^ (1 << bit)]))


def _shard_files(directory: str) -> list:
    return sorted(n for n in os.listdir(directory) if n.endswith(".rps"))


def _rewrite_footer(path: str, mutate_chunk) -> None:
    """Re-pack a shard's footer with mutated chunk metas (valid crc)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    footer = unpack_footer(blob)
    body_len = int.from_bytes(blob[-TRAILER_LEN:-4], "little")
    chunks_end = len(blob) - TRAILER_LEN - FOOTER_CRC_LEN - body_len
    new = blob[:chunks_end] + pack_footer(ShardFooter(
        row_start=footer.row_start, n_rows=footer.n_rows,
        chunks=tuple(mutate_chunk(c) for c in footer.chunks)))
    with open(path, "wb") as fh:
        fh.write(new)


def _downgrade_shard_to_v1(path: str) -> None:
    """Rewrite a v2 shard in the pre-checksum v1 layout (no chunk crc,
    no footer crc) — the compatibility shape old files still have."""
    with open(path, "rb") as fh:
        blob = fh.read()
    footer = unpack_footer(blob)
    body_len = int.from_bytes(blob[-TRAILER_LEN:-4], "little")
    chunks_end = len(blob) - TRAILER_LEN - FOOTER_CRC_LEN - body_len
    doc = {"version": 1, "row_start": footer.row_start,
           "n_rows": footer.n_rows,
           "chunks": [{k: v for k, v in asdict(c).items() if k != "crc"}
                      for c in footer.chunks]}
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    new = (blob[:4] + bytes([1]) + blob[HEADER_LEN:chunks_end]
           + body + len(body).to_bytes(8, "little") + FOOTER_MAGIC)
    with open(path, "wb") as fh:
        fh.write(new)


@pytest.fixture()
def small_table(tmp_path):
    directory = str(tmp_path / "t")
    rng = np.random.default_rng(5)
    columns = {"ts": np.arange(12000, dtype=np.int64),
               "val": rng.integers(0, 500, 12000).astype(np.int64)}
    write_table(directory, columns, shard_rows=4096, chunk_rows=512)
    return directory, columns


class TestCorruptionDetection:
    def test_chunk_crc_verified_on_revive(self, small_table):
        directory, columns = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        with open(shard, "rb") as fh:
            blob = fh.read()
        footer = unpack_footer(blob)
        meta = footer.column_chunks("val")[2]
        _flip_bit(shard, meta.offset + meta.nbytes // 2, 3)
        with Table.open(directory) as table:
            with pytest.raises(CorruptChunkError) as info:
                table.scan()
            message = str(info.value)
            assert "shard-00000" in message
            assert "'val'" in message
            assert f"[{meta.row_start}, " in message

    def test_skip_policy_quarantines_and_reports(self, small_table):
        directory, columns = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        with open(shard, "rb") as fh:
            footer = unpack_footer(fh.read())
        meta = footer.column_chunks("val")[0]
        _flip_bit(shard, meta.offset + 4, 0)
        with Table.open(directory) as table:
            res = table.scan(where=("ts", 0, 12000), on_corruption="skip")
            assert res.stats.chunks_corrupt == 1
            # exactly the quarantined granule's rows are missing
            assert res.n_rows == 12000 - meta.n_rows
            assert not np.isin(np.arange(meta.n_rows), res.row_ids).any()
        # unified exec layer surfaces the bucket in explain()
        from repro.exec import Plan
        from repro.store import StoreSource

        with Table.open(directory) as table:
            result = Plan.scan(["ts", "val"]).execute(
                StoreSource(table), on_corruption="skip")
            assert result.stats.chunks_corrupt == 1
            assert "corrupt: 1 quarantined" in result.explain()

    def test_footer_checksum_guards_the_catalog(self, small_table):
        directory, _ = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        size = os.path.getsize(shard)
        # flip inside the footer JSON body (zone maps live there)
        _flip_bit(shard, size - TRAILER_LEN - FOOTER_CRC_LEN - 20, 1)
        with pytest.raises(ValueError, match="footer checksum"):
            Table.open(directory)

    def test_verify_checksums_off_is_the_unchecked_baseline(
            self, small_table):
        directory, columns = small_table
        with Table.open(directory, verify_checksums=False) as table:
            res = table.scan()
            np.testing.assert_array_equal(res.columns["ts"],
                                          columns["ts"])

    def test_v1_files_still_readable_without_checksums(self, small_table):
        directory, columns = small_table
        for name in _shard_files(directory):
            _downgrade_shard_to_v1(os.path.join(directory, name))
        with Table.open(directory) as table:
            res = table.scan(where=("ts", 1000, 3000))
            np.testing.assert_array_equal(res.columns["ts"],
                                          np.arange(1000, 3000))
        report = scrub_table(directory)
        assert report.ok  # everything except the absent crc scrubs
        assert all(s.chunks_crc_verified == 0 for s in report.shards)

    def test_mixed_v1_v2_table(self, small_table):
        directory, columns = small_table
        _downgrade_shard_to_v1(
            os.path.join(directory, _shard_files(directory)[0]))
        with Table.open(directory) as table:
            res = table.scan()
            np.testing.assert_array_equal(
                np.sort(res.columns["ts"]), columns["ts"])


class TestScrub:
    def test_clean_table_scrubs_clean(self, small_table):
        directory, _ = small_table
        report = scrub_table(directory)
        assert report.ok
        assert len(report.shards) == 3
        assert all(s.chunks_checked > 0 and
                   s.chunks_crc_verified == s.chunks_checked
                   for s in report.shards)
        assert "CLEAN" in report.summary()

    def test_scrub_reports_every_broken_shard(self, small_table):
        directory, _ = small_table
        names = _shard_files(directory)
        _flip_bit(os.path.join(directory, names[0]), 100, 0)
        _flip_bit(os.path.join(directory, names[2]), 200, 5)
        report = scrub_table(directory)
        assert not report.ok
        broken = [s.file for s in report.shards if not s.ok]
        assert broken == [names[0], names[2]]  # kept walking past #0
        assert "crc32 mismatch" in report.shards[0].errors[0]

    def test_scrub_catches_zone_map_violations(self, small_table):
        directory, _ = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])

        def shrink_first_val_zone(meta):
            if meta.column == "val" and meta.row_start == 0:
                return replace(meta, zmax=meta.zmin)
            return meta

        _rewrite_footer(shard, shrink_first_val_zone)
        report = scrub_table(directory)
        assert not report.ok
        assert any("escape the zone map" in err
                   for err in report.shards[0].errors)

    def test_scrub_checks_deletion_vectors(self, tmp_path):
        directory = str(tmp_path / "t")
        table = MutableTable.create(directory, schema=("k",),
                                    shard_rows=1024, chunk_rows=256)
        table.append({"k": np.arange(3000, dtype=np.int64)})
        table.flush()
        table.delete(("k", 0, 10))
        table.flush()
        table.close()
        assert scrub_table(directory).ok
        dv = [n for n in os.listdir(directory) if n.endswith(".dv")][0]
        _flip_bit(os.path.join(directory, dv), 20, 2)
        report = scrub_table(directory)
        assert not report.ok
        assert any("deletion vector" in err for err in report.errors)

    def test_scrub_cli_exit_codes(self, small_table, capsys):
        directory, _ = small_table
        assert store_cli.main(["scrub", directory]) == 0
        assert "CLEAN" in capsys.readouterr().out
        _flip_bit(os.path.join(directory,
                               _shard_files(directory)[1]), 64, 7)
        assert store_cli.main(["scrub", directory]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert store_cli.main(["scrub", directory, "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["shards"]

    def test_scrub_cli_rejects_non_table(self, tmp_path, capsys):
        assert store_cli.main(["scrub", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err


# -------------------------------------------------- bit-flip property suite
_FLIP_DIRS = itertools.count()  # hypothesis may redraw the same (byte, bit)

if HAVE_HYPOTHESIS:

    @pytest.fixture(scope="module")
    def flip_fixture(tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("flip") / "t")
        rng = np.random.default_rng(9)
        columns = {"ts": np.arange(4096, dtype=np.int64),
                   "val": rng.integers(-1000, 1000, 4096
                                       ).astype(np.int64)}
        write_table(directory, columns, shard_rows=2048, chunk_rows=512)
        shard = os.path.join(directory, _shard_files(directory)[0])
        return directory, columns, shard, os.path.getsize(shard)

    class TestBitFlipProperty:
        """Flip any single bit anywhere in a shard file: the scan either
        raises (``CorruptChunkError``/``ValueError``), skips-and-reports
        under the skip policy, or provably returns the correct rows.
        Silent wrong answers are the one forbidden outcome."""

        @settings(max_examples=60, deadline=None,
                  suppress_health_check=[
                      HealthCheck.function_scoped_fixture])
        @given(data=st.data())
        def test_single_bit_flip_is_never_silent(self, flip_fixture,
                                                 tmp_path, data):
            directory, columns, shard, size = flip_fixture
            byte = data.draw(st.integers(0, size - 1), label="byte")
            bit = data.draw(st.integers(0, 7), label="bit")
            copy = str(tmp_path / f"flip-{next(_FLIP_DIRS)}")
            shutil.copytree(directory, copy)
            _flip_bit(os.path.join(copy, os.path.basename(shard)),
                      byte, bit)
            try:
                with Table.open(copy) as table:
                    res = table.scan(threads=1)
            except (ValueError, GranuleError):
                return  # detected loudly: the acceptable outcome
            np.testing.assert_array_equal(res.columns["ts"],
                                          columns["ts"])
            np.testing.assert_array_equal(res.columns["val"],
                                          columns["val"])

        @settings(max_examples=25, deadline=None,
                  suppress_health_check=[
                      HealthCheck.function_scoped_fixture])
        @given(data=st.data())
        def test_skip_policy_never_returns_wrong_rows(self, flip_fixture,
                                                      tmp_path, data):
            directory, columns, shard, size = flip_fixture
            byte = data.draw(st.integers(0, size - 1), label="byte")
            bit = data.draw(st.integers(0, 7), label="bit")
            copy = str(tmp_path / f"skip-{next(_FLIP_DIRS)}")
            shutil.copytree(directory, copy)
            _flip_bit(os.path.join(copy, os.path.basename(shard)),
                      byte, bit)
            try:
                with Table.open(copy) as table:
                    res = table.scan(threads=1, on_corruption="skip")
            except (ValueError, GranuleError):
                return  # header/footer damage still raises at open
            # every row that did come back carries its true values
            lookup = {name: dict(zip(columns["ts"], columns[name]))
                      for name in columns}
            assert res.stats.chunks_corrupt in (0, 1)
            if res.stats.chunks_corrupt == 0:
                assert res.n_rows == 4096
            for name in columns:
                expected = np.asarray(
                    [lookup[name][ts] for ts in res.columns["ts"]])
                np.testing.assert_array_equal(res.columns[name],
                                              expected)


# -------------------------------------------------- executor resilience
class TestExecutorResilience:
    def test_timeout_raises_with_partial_stats(self, small_table):
        directory, _ = small_table
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.05,
                                      times=None)
        with inj, Table.open(directory, cache_bytes=0) as table:
            with pytest.raises(ExecTimeout) as info:
                table.scan(threads=2, timeout_s=0.02)
        assert isinstance(info.value.stats, ExecStats)
        assert "timeout_s=0.02" in str(info.value)

    def test_timeout_serial_path(self, small_table):
        directory, _ = small_table
        inj = FaultInjector().slow_at("chunk.read", delay_s=0.05,
                                      times=None)
        with inj, Table.open(directory, cache_bytes=0) as table:
            with pytest.raises(ExecTimeout):
                table.scan(threads=1, timeout_s=0.02)

    def test_transient_eio_is_retried_to_success(self, small_table):
        directory, columns = small_table
        inj = FaultInjector().fail_at("chunk.read", error=errno.EIO,
                                      times=2)
        with inj, Table.open(directory, cache_bytes=0) as table:
            res = table.scan(threads=1)
        assert inj.fired("chunk.read") == 2
        np.testing.assert_array_equal(np.sort(res.columns["ts"]),
                                      columns["ts"])

    def test_persistent_eio_wraps_with_granule_context(self, small_table):
        directory, _ = small_table
        inj = FaultInjector().fail_at("chunk.read", error=errno.EIO,
                                      times=None)
        with inj, Table.open(directory, cache_bytes=0) as table:
            with pytest.raises(GranuleError) as info:
                table.scan(threads=2)
        err = info.value
        assert isinstance(err.cause, OSError)
        assert err.cause.errno == errno.EIO
        assert err.shard in _shard_files(directory)
        assert err.column in ("ts", "val")
        assert f"granule {err.granule}" in str(err)
        assert err.__cause__ is err.cause

    def test_non_transient_errors_are_not_retried(self, small_table):
        directory, _ = small_table
        inj = FaultInjector().fail_at("chunk.read", error=errno.ENOSPC)
        with inj, Table.open(directory, cache_bytes=0) as table:
            with pytest.raises(GranuleError):
                table.scan(threads=1)
        assert inj.fired("chunk.read") == 1  # no retry burned on ENOSPC

    def test_corrupt_chunk_error_is_not_wrapped(self, small_table):
        directory, _ = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        with open(shard, "rb") as fh:
            meta = unpack_footer(fh.read()).column_chunks("ts")[0]
        _flip_bit(shard, meta.offset + 8, 2)
        with Table.open(directory) as table:
            with pytest.raises(CorruptChunkError):
                table.scan(threads=4)

    def test_knob_validation(self, small_table):
        directory, _ = small_table
        with Table.open(directory) as table:
            with pytest.raises(ValueError, match="on_corruption"):
                table.scan(on_corruption="explode")
            with pytest.raises(ValueError, match="timeout_s"):
                table.scan(timeout_s=0)


# ---------------------------------------------------------- writer cleanup
class TestWriterCleanup:
    def test_enospc_mid_shard_cleans_staging(self, tmp_path):
        directory = str(tmp_path / "t")
        inj = FaultInjector().fail_at("shard.write", error=errno.ENOSPC,
                                      partial=64)
        columns = {"k": np.arange(5000, dtype=np.int64)}
        with inj, pytest.raises(OSError) as info:
            write_table(directory, columns, shard_rows=2048)
        assert info.value.errno == errno.ENOSPC
        assert _tmp_files(directory) == []
        with pytest.raises(ValueError):
            Table.open(directory)  # nothing was ever published

    def test_failed_overwrite_leaves_table_byte_identical(self, tmp_path):
        directory = str(tmp_path / "t")
        columns = {"k": np.arange(5000, dtype=np.int64)}
        write_table(directory, columns, shard_rows=2048)
        before = {name: open(os.path.join(directory, name), "rb").read()
                  for name in os.listdir(directory)}
        inj = FaultInjector().fail_at("shard.write", at=2,
                                      error=errno.ENOSPC)
        with inj, pytest.raises(OSError):
            write_table(directory,
                        {"k": np.arange(9000, dtype=np.int64)},
                        shard_rows=2048, overwrite=True)
        after = {name: open(os.path.join(directory, name), "rb").read()
                 for name in os.listdir(directory)}
        assert after == before  # byte-identical, no extra files
        with Table.open(directory) as table:
            np.testing.assert_array_equal(table.read_column("k"),
                                          columns["k"])

    def test_flush_enospc_keeps_memtable_and_retries(self, tmp_path):
        directory = str(tmp_path / "t")
        table = MutableTable.create(directory, schema=("k",),
                                    shard_rows=1024)
        table.append({"k": np.arange(3000, dtype=np.int64)})
        inj = FaultInjector().fail_at("shard.write", error=errno.ENOSPC)
        with inj, pytest.raises(OSError):
            table.flush()
        assert _tmp_files(directory) == []
        assert table.pending_rows == 3000  # nothing lost, still buffered
        table.flush()  # disk "recovered": the same commit now lands
        table.close()
        with Table.open(directory) as snap:
            np.testing.assert_array_equal(
                np.sort(snap.read_column("k")), np.arange(3000))

    def test_abort_is_idempotent_and_close_refuses_after(self, tmp_path):
        directory = str(tmp_path / "t")
        writer = TableWriter(directory, shard_rows=512)
        writer.append({"k": np.arange(2000, dtype=np.int64)})
        writer.abort()
        writer.abort()
        assert _tmp_files(directory) == []
        assert writer.shard_entries == ()


# ------------------------------------------------------------- format bump
class TestFormatV2:
    def test_new_shards_carry_version_2_and_chunk_crcs(self, small_table):
        directory, _ = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        with open(shard, "rb") as fh:
            blob = fh.read()
        assert blob[4] == 2 == store_format.VERSION
        footer = unpack_footer(blob)
        import zlib

        for meta in footer.chunks:
            assert meta.crc is not None
            assert zlib.crc32(
                blob[meta.offset: meta.offset + meta.nbytes]) == meta.crc

    def test_future_version_still_rejected(self, small_table):
        directory, _ = small_table
        shard = os.path.join(directory, _shard_files(directory)[0])
        with open(shard, "r+b") as fh:
            fh.seek(4)
            fh.write(bytes([store_format.VERSION + 1]))
        with pytest.raises(ValueError, match="newer than the supported"):
            Table.open(directory)
