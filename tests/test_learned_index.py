"""Tests for the ALEX-style learned index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned_index import LearnedSortedIndex

sorted_keys = st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1,
                       max_size=400).map(
                           lambda v: np.sort(np.array(v, dtype=np.int64)))


class TestLowerBound:
    @given(sorted_keys, st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_searchsorted(self, keys, data):
        index = LearnedSortedIndex(keys, leaf_size=16)
        probe = data.draw(st.integers(int(keys[0]) - 10,
                                      int(keys[-1]) + 10))
        expected = int(np.searchsorted(keys, probe, side="right")) - 1
        assert index.lower_bound(probe) == expected

    def test_below_first_key(self):
        index = LearnedSortedIndex(np.array([10, 20], dtype=np.int64))
        assert index.lower_bound(9) == -1

    def test_empty(self):
        index = LearnedSortedIndex(np.array([], dtype=np.int64))
        assert index.lower_bound(5) == -1
        assert len(index) == 0

    def test_duplicates(self):
        keys = np.array([3, 3, 3, 7, 7], dtype=np.int64)
        index = LearnedSortedIndex(keys)
        assert index.lower_bound(3) == 2
        assert index.lower_bound(7) == 4
        assert index.lower_bound(5) == 2

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            LearnedSortedIndex(np.array([2, 1], dtype=np.int64))


class TestFind:
    @given(sorted_keys, st.data())
    @settings(max_examples=30, deadline=None)
    def test_find_existing(self, keys, data):
        index = LearnedSortedIndex(keys, leaf_size=32)
        pos = data.draw(st.integers(0, len(keys) - 1))
        found = index.find(int(keys[pos]))
        assert found is not None
        assert keys[found] == keys[pos]

    def test_find_missing(self):
        index = LearnedSortedIndex(np.array([1, 5, 9], dtype=np.int64))
        assert index.find(4) is None


class TestMetadata:
    def test_nbytes_grows_with_leaves(self):
        small = LearnedSortedIndex(np.arange(100, dtype=np.int64),
                                   leaf_size=50)
        large = LearnedSortedIndex(np.arange(10_000, dtype=np.int64),
                                   leaf_size=50)
        assert large.nbytes > small.nbytes

    def test_linear_keys_have_tiny_error(self):
        index = LearnedSortedIndex(7 * np.arange(10_000, dtype=np.int64),
                                   leaf_size=256)
        assert all(leaf.err <= 2 for leaf in index._leaves)
