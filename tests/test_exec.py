"""Tests for the unified execution layer (``repro.exec``)."""

import json
import os

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import codecs
from repro.engine import (
    ENCODINGS,
    IOModel,
    ParquetLikeFile,
    ParquetSource,
    run_filter_groupby_query,
)
from repro.exec import (
    And,
    ArraySource,
    Bitmap,
    InSet,
    Or,
    Plan,
    Range,
    col,
    split_pushdown,
)
from repro.store import Table, write_table
from repro.store.executor import StoreSource

INT_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_integers]


def sensor_columns(n=6000, seed=3):
    from repro.datasets import sensor_fixture

    return sensor_fixture(n, seed=seed)


@pytest.fixture(scope="module")
def backends(tmp_path_factory):
    """The same table behind all three ColumnSource implementations."""
    columns = sensor_columns()
    path = str(tmp_path_factory.mktemp("exec") / "table")
    write_table(path, columns, codec="auto", shard_rows=1500,
                chunk_rows=250)
    table = Table.open(path)
    file = ParquetLikeFile.write(columns, "leco", row_group_size=1500,
                                 partition_size=250)
    sources = {
        "store": StoreSource(table),
        "parquet": ParquetSource(file),
        "memory": ArraySource(columns, morsel_rows=1500),
    }
    yield columns, sources, file
    table.close()


class TestExpr:
    def test_col_sugar(self):
        assert col("a").between(3, 9) == Range("a", 3, 9)
        assert (col("a") >= 3) == Range("a", 3, None)
        assert (col("a") > 3) == Range("a", 4, None)
        assert (col("a") < 9) == Range("a", None, 9)
        assert (col("a") <= 9) == Range("a", None, 10)
        assert (col("a") == 5) == Range("a", 5, 6)
        assert col("a").isin([2, 1, 2]) == InSet("a", [1, 2])

    def test_junctions_flatten(self):
        e = (col("a") >= 1) & (col("b") >= 2) & (col("c") >= 3)
        assert isinstance(e, And) and len(e.children) == 3
        o = (col("a") >= 1) | ((col("b") >= 2) | (col("c") >= 3))
        assert isinstance(o, Or) and len(o.children) == 3
        assert e.columns() == frozenset("abc")

    def test_range_maybe_match(self):
        r = Range("a", 10, 20)
        assert r.maybe_match({"a": (0, 9)}, 0, 5) is False
        assert r.maybe_match({"a": (20, 30)}, 0, 5) is False
        assert r.maybe_match({"a": (15, 16)}, 0, 5) is True
        assert r.maybe_match({"a": None}, 0, 5) is True   # unknown bounds
        assert Range("a", 7, 7).maybe_match({"a": (0, 99)}, 0, 5) is False

    def test_inset_and_bitmap_maybe_match(self):
        s = InSet("a", [5, 50])
        assert s.maybe_match({"a": (10, 40)}, 0, 5) is False
        assert s.maybe_match({"a": (40, 60)}, 0, 5) is True
        bm = Bitmap(np.array([0, 0, 1, 0], dtype=bool))
        assert bm.maybe_match({}, 0, 2) is False
        assert bm.maybe_match({}, 2, 2) is True

    def test_evaluate(self):
        batch = {"a": np.array([1, 5, 9]), "b": np.array([2, 2, 7])}
        ids = np.arange(3)
        e = col("a").between(2, 10) & (col("b") == 2)
        assert list(e.evaluate(batch, ids)) == [False, True, False]
        o = (col("a") == 1) | (col("b") == 7)
        assert list(o.evaluate(batch, ids)) == [True, False, True]

    def test_split_pushdown(self):
        e = ((col("a") >= 1) & (col("a") < 9) & (col("b") >= 5)
             & col("c").isin([1]) & Bitmap(np.ones(4, dtype=bool)))
        ranges, bitmaps, residual = split_pushdown(e)
        # the two half-ranges on `a` merged into one pushable range;
        # the lone half-range on `b` stays residual with the IN term
        assert ranges == {"a": Range("a", 1, 9)}
        assert len(bitmaps) == 1
        assert isinstance(residual, And) and len(residual.children) == 2
        assert split_pushdown(None) == ({}, (), None)


class TestPlanBuilder:
    def test_validation(self):
        with pytest.raises(ValueError, match="cannot be empty"):
            Plan.scan([])
        with pytest.raises(ValueError, match="unknown aggregate op"):
            Plan.scan().aggregate({"x": ("median", "a")})
        with pytest.raises(ValueError, match="unknown join mode"):
            Plan.scan().join(on="a", keys=[1], how="outer")
        with pytest.raises(ValueError, match="terminal"):
            Plan.scan().aggregate({"x": ("sum", "a")}).where(col("a") >= 0)
        with pytest.raises(ValueError, match="must be unique"):
            Plan.scan().join(on="k", build={"k": [1, 1], "v": [2, 3]},
                             how="inner")

    def test_unknown_column_raises_keyerror(self, backends):
        _, sources, _ = backends
        for source in sources.values():
            with pytest.raises(KeyError, match="available: ts"):
                Plan.scan(["nope"]).execute(source)
            with pytest.raises(KeyError, match="unknown column"):
                Plan.scan(["ts"]).where(col("zzz") >= 0).execute(source)

    def test_static_explain(self):
        plan = (Plan.scan(["id"]).where(col("ts").between(1, 9))
                .aggregate({"s": ("sum", "val")}, group_by="id"))
        text = plan.explain()
        assert text.splitlines()[0].startswith("Aggregate[group_by=id")
        assert "1 <= ts < 9" in text and "Scan[columns=(id)]" in text


class TestBackendEquivalence:
    """One logical plan, every backend, identical results."""

    def test_row_plan_agrees_everywhere(self, backends):
        columns, sources, _ = backends
        ts = columns["ts"]
        lo, hi = int(ts[2000]), int(ts[2400])
        expr = col("ts").between(lo, hi) & col("status").isin([0, 2])
        mask = ((ts >= lo) & (ts < hi)
                & np.isin(columns["status"], [0, 2]))
        plan = Plan.scan(["sensor_id", "reading"]).where(expr)
        outputs = {name: plan.execute(source)
                   for name, source in sources.items()}
        for name, res in outputs.items():
            assert np.array_equal(res.row_ids, np.flatnonzero(mask)), name
            for column in ("sensor_id", "reading"):
                assert np.array_equal(res.columns[column],
                                      columns[column][mask]), name

    def test_two_pred_groupby_matches_legacy(self, backends):
        """The acceptance plan: 2-predicate filter + groupby-avg runs on
        both backends and matches the legacy run_* path exactly."""
        columns, sources, file = backends
        ts = columns["ts"]
        lo, hi = int(ts[1000]), int(ts[2500])
        n_half = (int(columns["sensor_id"].max()) + 1) // 2
        plan = (Plan.scan()
                .where(col("ts").between(lo, hi)
                       & col("sensor_id").between(0, n_half))
                .aggregate({"avg": ("avg", "reading")},
                           group_by="sensor_id"))
        store_groups = plan.execute(sources["store"]).groups
        parquet_groups = plan.execute(sources["parquet"]).groups
        assert store_groups == parquet_groups
        mask = ((ts >= lo) & (ts < hi) & (columns["sensor_id"] < n_half))
        for key, row in store_groups.items():
            sel = mask & (columns["sensor_id"] == key)
            assert row["avg"] == pytest.approx(
                float(columns["reading"][sel].mean()), rel=1e-12)
        # 1-predicate version == the legacy engine helper, bit for bit
        legacy_file = ParquetLikeFile.write(
            {"ts": ts, "id": columns["sensor_id"],
             "val": columns["reading"]}, "leco", row_group_size=1500,
            partition_size=250)
        legacy = run_filter_groupby_query(legacy_file, lo, hi)
        one_pred = (Plan.scan()
                    .where(col("ts").between(lo, hi))
                    .aggregate({"avg": ("avg", "reading")},
                               group_by="sensor_id"))
        for name in ("store", "parquet"):
            groups = one_pred.execute(sources[name]).groups
            assert {k: v["avg"] for k, v in groups.items()} \
                == legacy.answer, name

    def test_explain_reports_pruning(self, backends):
        columns, sources, _ = backends
        ts = columns["ts"]
        lo, hi = int(ts[3000]), int(ts[3030])  # ~0.5% selectivity
        plan = Plan.scan(["reading"]).where(col("ts").between(lo, hi))
        for name in ("store", "parquet"):
            res = plan.execute(sources[name])
            assert res.stats.granules_pruned > 0, name
            text = res.explain()
            assert f"{res.stats.granules_pruned} pruned" in text
            assert "Filter[pushed:" in text and "Scan[" in text

    def test_pushdown_modes_and_threads_agree(self, backends):
        columns, sources, _ = backends
        ts = columns["ts"]
        expr = (col("ts").between(int(ts[500]), int(ts[4000]))
                & (col("status") == 0))
        plan = Plan.scan(["ts", "reading"]).where(expr)
        reference = plan.execute(sources["store"])
        variants = [
            plan.execute(sources["store"], pushdown=False, prune=False),
            plan.execute(sources["store"], prune=False),
            plan.execute(sources["store"], threads=3),
            plan.execute(sources["memory"], pushdown=False, prune=False),
        ]
        for res in variants:
            assert np.array_equal(res.row_ids, reference.row_ids)
            for column in ("ts", "reading"):
                assert np.array_equal(res.columns[column],
                                      reference.columns[column])


class TestOperators:
    def _source(self, n=4000, seed=9):
        rng = np.random.default_rng(seed)
        cols = {
            "k": rng.integers(0, 12, n).astype(np.int64),
            "v": rng.integers(-1000, 1000, n).astype(np.int64),
        }
        return cols, ArraySource(cols, morsel_rows=700)

    def test_aggregate_ops_match_numpy(self):
        cols, source = self._source()
        res = (Plan.scan()
               .aggregate({"s": ("sum", "v"), "n": ("count", "v"),
                           "a": ("avg", "v"), "lo": ("min", "v"),
                           "hi": ("max", "v")}, group_by="k")
               .execute(source))
        for key in np.unique(cols["k"]):
            sel = cols["k"] == key
            row = res.groups[int(key)]
            assert row["s"] == int(cols["v"][sel].sum())
            assert row["n"] == int(sel.sum())
            assert row["a"] == pytest.approx(float(cols["v"][sel].mean()))
            assert row["lo"] == int(cols["v"][sel].min())
            assert row["hi"] == int(cols["v"][sel].max())

    def test_global_aggregate(self):
        cols, source = self._source()
        res = (Plan.scan().where(col("v") >= 0)
               .aggregate({"s": ("sum", "v"), "n": ("count", "v")})
               .execute(source))
        sel = cols["v"] >= 0
        assert res.groups[None] == {"s": int(cols["v"][sel].sum()),
                                    "n": int(sel.sum())}

    def test_count_only_aggregate(self):
        """Regression: a plan whose only aggregate is count (no value
        column to materialise) must still count the surviving rows."""
        cols, source = self._source()
        res = (Plan.scan().aggregate({"n": ("count", "v")})
               .execute(source))
        assert res.groups[None] == {"n": len(cols["v"])}
        filtered = (Plan.scan().where(col("v") >= 0)
                    .aggregate({"n": ("count", "v")}).execute(source))
        assert filtered.groups[None] == {"n": int((cols["v"] >= 0).sum())}
        grouped = (Plan.scan().aggregate({"n": ("count", "v")},
                                         group_by="k").execute(source))
        for key in np.unique(cols["k"]):
            assert grouped.groups[int(key)]["n"] == \
                int((cols["k"] == key).sum())

    def test_empty_selection_aggregate(self):
        _, source = self._source()
        res = (Plan.scan().where(col("v") >= 10_000)
               .aggregate({"s": ("sum", "v")}, group_by="k")
               .execute(source))
        assert res.groups == {}

    def test_semi_join(self):
        cols, source = self._source()
        keys = np.array([2, 5, 7], dtype=np.int64)
        res = (Plan.scan(["k", "v"]).join(on="k", keys=keys)
               .execute(source))
        mask = np.isin(cols["k"], keys)
        assert np.array_equal(res.row_ids, np.flatnonzero(mask))
        assert np.array_equal(res.columns["v"], cols["v"][mask])

    def test_inner_join_attaches_build_payload(self):
        cols, source = self._source()
        build = {"k": np.arange(6, dtype=np.int64),
                 "label": np.arange(6, dtype=np.int64) * 11}
        res = (Plan.scan(["k", "v"])
               .join(on="k", build=build, how="inner")
               .execute(source))
        mask = cols["k"] < 6
        assert np.array_equal(res.columns["k"], cols["k"][mask])
        assert np.array_equal(res.columns["label"], cols["k"][mask] * 11)

    def test_bitmap_prunes_granules(self):
        cols, source = self._source()
        bitmap = np.zeros(len(cols["k"]), dtype=bool)
        bitmap[100:200] = True
        res = (Plan.scan(["v"]).where(Bitmap(bitmap))
               .aggregate({"s": ("sum", "v")}).execute(source))
        assert res.groups[None]["s"] == int(cols["v"][100:200].sum())
        assert res.stats.granules_pruned == len(source.granules()) - 1

    def test_project_narrows_output(self):
        cols, source = self._source()
        res = (Plan.scan().where(col("k") == 3).project(["v"])
               .execute(source))
        assert list(res.columns) == ["v"]
        assert np.array_equal(res.columns["v"], cols["v"][cols["k"] == 3])


def _term(data, name, values):
    """Draw one predicate term + its numpy reference mask."""
    vmin, vmax = int(values.min()), int(values.max())
    kind = data.draw(st.sampled_from(
        ["range", "half_lo", "half_hi", "eq", "in"]))
    a = data.draw(st.integers(vmin - 5, vmax + 5))
    b = data.draw(st.integers(vmin - 5, vmax + 5))
    lo, hi = min(a, b), max(a, b)
    if kind == "range":
        return col(name).between(lo, hi), (values >= lo) & (values < hi)
    if kind == "half_lo":
        return (col(name) >= lo), values >= lo
    if kind == "half_hi":
        return (col(name) < hi), values < hi
    if kind == "eq":
        return (col(name) == a), values == a
    members = data.draw(st.lists(st.integers(vmin - 2, vmax + 2),
                                 min_size=1, max_size=5))
    return col(name).isin(members), np.isin(values, members)


def _expression(data, columns):
    """Random multi-predicate expression (AND of terms / OR pairs)."""
    names = sorted(columns)
    expr, mask = None, None
    for _ in range(data.draw(st.integers(1, 3))):
        name = data.draw(st.sampled_from(names))
        term, term_mask = _term(data, name, columns[name])
        if data.draw(st.booleans()):
            other = data.draw(st.sampled_from(names))
            alt, alt_mask = _term(data, other, columns[other])
            term, term_mask = term | alt, term_mask | alt_mask
        expr = term if expr is None else expr & term
        mask = term_mask if mask is None else mask & term_mask
    return expr, mask


if HAVE_HYPOTHESIS:
    class TestPushdownProperty:
        """Pushdown execution == naive decode-all-then-filter, for random
        multi-predicate expressions, on both backends, for every integer
        codec in the registry (ParquetLikeFile hosts its engine encodings;
        the store hosts all of them)."""

        @pytest.mark.parametrize("codec", INT_CODECS)
        @given(data=st.data())
        @settings(max_examples=6, deadline=None)
        def test_store_backend(self, codec, tmp_path_factory, data):
            raw = data.draw(st.lists(
                st.integers(-(1 << 40), 1 << 40), min_size=1,
                max_size=300))
            values = np.array(raw, dtype=np.int64)
            if codecs.info(codec).requires_sorted:
                values = np.sort(np.abs(values))
            columns = {"v": values,
                       "w": np.arange(len(values), dtype=np.int64)}
            expr, mask = _expression(data, columns)
            path = str(tmp_path_factory.mktemp("prop") / "t")
            write_table(path, columns, codec=codec, shard_rows=64,
                        chunk_rows=16)
            with Table.open(path) as table:
                self._check(StoreSource(table), columns, expr, mask)

        @pytest.mark.parametrize("encoding", ENCODINGS)
        @given(data=st.data())
        @settings(max_examples=6, deadline=None)
        def test_parquet_backend(self, encoding, data):
            raw = data.draw(st.lists(
                st.integers(-(1 << 40), 1 << 40), min_size=1,
                max_size=300))
            values = np.array(raw, dtype=np.int64)
            columns = {"v": values,
                       "w": np.arange(len(values), dtype=np.int64)}
            expr, mask = _expression(data, columns)
            file = ParquetLikeFile.write(columns, encoding,
                                         row_group_size=64,
                                         partition_size=16)
            self._check(ParquetSource(file, io=IOModel()), columns,
                        expr, mask)

        @staticmethod
        def _check(source, columns, expr, mask):
            plan = Plan.scan(["v", "w"]).where(expr)
            pushed = plan.execute(source)
            naive = plan.execute(source, prune=False, pushdown=False)
            expected = np.flatnonzero(mask)
            assert np.array_equal(pushed.row_ids, expected)
            assert np.array_equal(naive.row_ids, expected)
            for name in ("v", "w"):
                assert np.array_equal(pushed.columns[name],
                                      columns[name][mask])
                assert np.array_equal(naive.columns[name],
                                      pushed.columns[name])


class TestBenchExec:
    def test_bench_exec_quick(self, tmp_path):
        import importlib.util
        import sys

        bench_path = os.path.join(os.path.dirname(__file__), "..",
                                  "benchmarks", "bench_exec.py")
        spec = importlib.util.spec_from_file_location("bench_exec",
                                                      bench_path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["bench_exec"] = module
        spec.loader.exec_module(module)
        json_path = str(tmp_path / "BENCH_exec.json")
        module.main(["--quick", "--json", json_path,
                     "--dir", str(tmp_path / "bench_table")])
        with open(json_path) as fh:
            payload = json.load(fh)
        assert all(payload["checks"].values()), payload["checks"]
        selective = payload["backends"]["store"]["preds1_sel0.005"]
        assert selective["pushdown_ms"] < selective["naive_ms"]
        assert selective["granules_pruned"] > 0
        assert "pruned" in payload["explain"]
