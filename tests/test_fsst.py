"""Tests for the FSST-style string baseline (paper §4.7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fsst import FSSTCodec, build_symbol_table


class TestSymbolTable:
    def test_symbols_cover_frequent_substrings(self):
        sample = b"com.gmail." * 500
        table = build_symbol_table(sample)
        assert any(len(sym) >= 4 for sym in table)
        assert len(table) <= 255

    def test_empty_sample(self):
        table = build_symbol_table(b"")
        assert isinstance(table, dict)

    def test_codes_are_dense_and_below_escape(self):
        table = build_symbol_table(b"abcabcabc" * 100)
        codes = sorted(table.values())
        assert codes == list(range(len(codes)))
        assert all(code < 255 for code in codes)


class TestRoundTrip:
    @given(st.lists(st.binary(min_size=0, max_size=30), min_size=1,
                    max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_bytes(self, strings):
        enc = FSSTCodec().encode(strings)
        assert enc.decode_all() == strings

    @pytest.mark.parametrize("block", [0, 20, 40, 100])
    def test_offset_blocks_roundtrip(self, block):
        strings = [f"host{i % 7}.user{i:05d}".encode() for i in range(500)]
        enc = FSSTCodec(offset_block=block).encode(strings)
        assert enc.decode_all() == strings
        for pos in (0, 17, 123, 499):
            assert enc.get(pos) == strings[pos]

    def test_escape_bytes_handled(self):
        strings = [bytes([255, 255, 0, 1]), bytes([255])]
        enc = FSSTCodec().encode(strings)
        assert enc.decode_all() == strings


class TestCompression:
    def test_repetitive_strings_compress(self):
        strings = [b"org.apache.arrow.flight" for _ in range(1000)]
        raw = sum(len(s) for s in strings)
        enc = FSSTCodec().encode(strings)
        assert enc.compressed_size_bytes() < raw / 3

    def test_offset_delta_blocks_shrink_metadata(self):
        strings = [f"w{i:06d}".encode() for i in range(4000)]
        plain = FSSTCodec(offset_block=0).encode(strings)
        blocked = FSSTCodec(offset_block=100).encode(strings)
        assert (blocked.compressed_size_bytes()
                < plain.compressed_size_bytes())

    def test_out_of_range(self):
        enc = FSSTCodec().encode([b"x"])
        with pytest.raises(IndexError):
            enc.get(1)
