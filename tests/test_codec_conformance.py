"""Registry-driven conformance suite (runs against EVERY registered codec).

The parametrization enumerates :func:`repro.codecs.available` at collection
time, so registering a new codec automatically subjects it to the shared
contract — no test edits required:

* ``from_bytes(to_bytes(x))`` round-trips through the envelope;
* ``gather(idx)`` equals ``decode_all()[idx]`` on random index sets
  including duplicates and boundary indices;
* ``decode_range(lo, hi)`` equals the full-decode slice;
* scalar ``get`` agrees with ``gather``;
* the envelope rejects truncated and foreign-magic blobs with ValueError.
"""

import numpy as np
import pytest

from repro import codecs

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

INT_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_integers]
STR_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_strings]


def make_int_data(name: str, n: int = 600, seed: int = 7) -> np.ndarray:
    """Integer test data honouring the codec's input capabilities."""
    rng = np.random.default_rng(seed)
    values = np.concatenate([
        np.cumsum(rng.integers(0, 50, n // 2)),       # serial-correlated
        rng.integers(-(1 << 33), 1 << 33, n - n // 2),  # wide + negative
    ]).astype(np.int64)
    if codecs.info(name).requires_sorted:
        values = np.sort(np.abs(values))
    return values


def make_strings(n: int = 300) -> list[bytes]:
    return [f"host-{i // 7:04d}.shard{i % 7}.example.net".encode()
            for i in range(n)]


def encode(name: str, data):
    return codecs.get(name).encode(data)


class TestIntegerConformance:
    @pytest.mark.parametrize("name", INT_CODECS)
    def test_envelope_roundtrip(self, name):
        values = make_int_data(name)
        seq = encode(name, values)
        blob = seq.to_bytes()
        assert blob[:4] == codecs.MAGIC
        revived = codecs.from_bytes(blob)
        assert len(revived) == len(values)
        assert np.array_equal(revived.decode_all(), values)
        # a second serialise/parse cycle is stable
        assert np.array_equal(
            codecs.from_bytes(revived.to_bytes()).decode_all(), values)

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_gather_matches_decode_all(self, name):
        values = make_int_data(name)
        seq = encode(name, values)
        rng = np.random.default_rng(3)
        n = len(values)
        idx = np.concatenate([
            [0, n - 1, 0, n - 1],          # boundaries, duplicated
            rng.integers(0, n, 64),
            rng.integers(0, n, 16),        # extra duplicates likely
        ]).astype(np.int64)
        out = np.asarray(seq.gather(idx), dtype=np.int64)
        assert np.array_equal(out, values[idx])

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_gather_empty_and_bounds(self, name):
        values = make_int_data(name)
        seq = encode(name, values)
        assert seq.gather(np.empty(0, dtype=np.int64)).size == 0
        with pytest.raises(IndexError):
            seq.gather(np.array([len(values)]))

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_scalar_get_agrees(self, name):
        values = make_int_data(name)
        seq = encode(name, values)
        for pos in (0, 1, len(values) // 2, len(values) - 1):
            assert seq.get(pos) == int(values[pos])

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_decode_range_matches_slice(self, name):
        values = make_int_data(name)
        seq = encode(name, values)
        n = len(values)
        for lo, hi in ((0, 0), (0, n), (7, 8), (n // 3, 2 * n // 3),
                       (n - 1, n)):
            assert np.array_equal(seq.decode_range(lo, hi), values[lo:hi])
        with pytest.raises(IndexError):
            seq.decode_range(0, n + 1)

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_envelope_rejects_truncation(self, name):
        blob = encode(name, make_int_data(name)).to_bytes()
        for cut in (3, 5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ValueError):
                codecs.from_bytes(blob[:cut])

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_envelope_rejects_foreign_magic(self, name):
        blob = encode(name, make_int_data(name)).to_bytes()
        with pytest.raises(ValueError):
            codecs.from_bytes(b"ZSTD" + blob[4:])

    @pytest.mark.parametrize("name", INT_CODECS)
    def test_sequential_access_flag_matches_codec(self, name):
        codec = codecs.get(name)
        assert codecs.info(name).sequential_access == \
            getattr(codec, "sequential_access", False)


class TestStringConformance:
    @pytest.mark.parametrize("name", STR_CODECS)
    def test_envelope_roundtrip(self, name):
        strings = make_strings()
        seq = encode(name, strings)
        revived = codecs.from_bytes(seq.to_bytes())
        assert revived.decode_all() == strings

    @pytest.mark.parametrize("name", STR_CODECS)
    def test_gather_matches_decode_all(self, name):
        strings = make_strings()
        seq = encode(name, strings)
        idx = [0, len(strings) - 1, 5, 5, 17]
        assert list(seq.gather(idx)) == [strings[i] for i in idx]

    @pytest.mark.parametrize("name", STR_CODECS)
    def test_get_in_bounds(self, name):
        strings = make_strings()
        seq = encode(name, strings)
        assert seq.get(42) == strings[42]


class TestEnvelopeFormat:
    def test_unknown_codec_id_rejected(self):
        blob = codecs.envelope.pack("no-such-codec", b"\x00\x01")
        with pytest.raises(ValueError, match="no decoder"):
            codecs.from_bytes(blob)

    def test_future_version_rejected(self):
        blob = bytearray(codecs.envelope.pack("plain", b""))
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            codecs.from_bytes(bytes(blob))

    def test_empty_blob_rejected(self):
        with pytest.raises(ValueError):
            codecs.from_bytes(b"")

    def test_registry_lookup_errors(self):
        with pytest.raises(ValueError, match="unknown codec"):
            codecs.get("no-such-codec")
        with pytest.raises(ValueError, match="unknown codec"):
            codecs.info("no-such-codec")

    def test_info_records_wire_ids(self):
        for name in codecs.available():
            assert codecs.info(name).wire_id is not None

    def test_sequences_carry_registered_wire_id(self):
        values = make_int_data("plain", n=200)
        for name in INT_CODECS:
            data = np.sort(np.abs(values)) \
                if codecs.info(name).requires_sorted else values
            seq = codecs.get(name).encode(data)
            assert seq.wire_id == codecs.info(name).wire_id, name


class TestLecoModeNames:
    def test_name_implied_mode_overrides_spec(self):
        """codecs.get("leco-var", spec=...) must run variable partitioning
        even when the spec carries the default mode."""
        values = np.cumsum(np.arange(4000) % 7).astype(np.int64)
        spec = codecs.CodecSpec(codec="leco-var")  # mode defaults to "fix"
        var_arr = codecs.get("leco-var", spec=spec).encode(values).array
        fix_arr = codecs.get("leco-fix").encode(values).array
        assert var_arr.fixed_size is None
        assert fix_arr.fixed_size is not None

    def test_generic_leco_defers_to_spec(self):
        values = np.cumsum(np.arange(4000) % 7).astype(np.int64)
        spec = codecs.CodecSpec(mode="var")
        arr = codecs.get("leco", spec=spec).encode(values).array
        assert arr.fixed_size is None


if HAVE_HYPOTHESIS:
    int_arrays = st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1,
                          max_size=200).map(
                              lambda v: np.array(v, dtype=np.int64))

    class TestPropertyRoundtrip:
        @pytest.mark.parametrize("name", INT_CODECS)
        @given(values=int_arrays)
        @settings(max_examples=10, deadline=None)
        def test_roundtrip_and_gather(self, name, values):
            if codecs.info(name).requires_sorted:
                values = np.sort(np.abs(values))
            seq = encode(name, values)
            revived = codecs.from_bytes(seq.to_bytes())
            assert np.array_equal(revived.decode_all(), values)
            idx = np.arange(len(values))[::3]
            assert np.array_equal(
                np.asarray(seq.gather(idx), dtype=np.int64), values[idx])
