"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (legacy editable installs via ``--no-use-pep517`` need a setup.py).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
